#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "core/acquisition_keys.hpp"
#include "core/checkpoint.hpp"
#include "nn/plan.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sce::core {

namespace {

/// Robust isolation score of `x` against `cell`: the distance from `x`
/// to the *nearest* value recorded so far, in robust-sigma units
/// (1.4826·MAD makes the scale consistent with sigma under normality).
/// Nearest-value distance, not distance-from-median, because a cell is
/// legitimately multimodal — it mixes the workload's distinct inputs —
/// and a recurring mode far from the median is not pollution.  The scale
/// is floored at `mad_floor` times the cell median so a near-constant
/// cell (MAD ~ 0) does not promote benign variation into arbitrarily
/// many sigmas.  Returns 0 when the scale is still degenerate — such a
/// cell carries no spread to judge outliers against.
double robust_isolation(const std::vector<double>& cell, double x,
                        double mad_floor) {
  const double med = stats::quantile(cell, 0.5);
  std::vector<double> deviations;
  deviations.reserve(cell.size());
  for (double v : cell) deviations.push_back(std::abs(v - med));
  const double mad = stats::quantile(deviations, 0.5);
  const double scale = std::max(1.4826 * mad, mad_floor * std::abs(med));
  if (scale <= 0.0) return 0.0;
  double nearest = std::numeric_limits<double>::infinity();
  for (double v : cell) nearest = std::min(nearest, std::abs(x - v));
  return nearest / scale;
}

}  // namespace

void CampaignConfig::validate() const {
  if (categories.empty())
    throw InvalidArgument("campaign: no categories");
  if (samples_per_category == 0)
    throw InvalidArgument("campaign: samples_per_category must be > 0");
  if (num_shards == 0)
    throw InvalidArgument("campaign: num_shards must be >= 1");
  retry.validate();
  if (checkpoint_every > 0 && checkpoint_path.empty())
    throw InvalidArgument(
        "campaign: checkpoint_every set but checkpoint_path empty");
  if (event_drop_after == 0)
    throw InvalidArgument("campaign: event_drop_after must be >= 1");
  if (outlier_mad_threshold < 0.0)
    throw InvalidArgument("campaign: outlier_mad_threshold must be >= 0");
  if (outlier_mad_floor < 0.0)
    throw InvalidArgument("campaign: outlier_mad_floor must be >= 0");
}

bool CampaignDiagnostics::event_dropped(hpc::HpcEvent event) const {
  return std::find(dropped_events.begin(), dropped_events.end(), event) !=
         dropped_events.end();
}

bool CampaignDiagnostics::event_unsupported(hpc::HpcEvent event) const {
  return std::find(unsupported_events.begin(), unsupported_events.end(),
                   event) != unsupported_events.end();
}

std::string CampaignDiagnostics::summary() const {
  std::string s = "recorded " + std::to_string(measurements_recorded) + "/" +
                  std::to_string(measurements_attempted) + " attempts, " +
                  std::to_string(transient_faults) + " transient faults, " +
                  std::to_string(incomplete_samples) + " incomplete samples, " +
                  std::to_string(outliers_quarantined) + " outliers, " +
                  std::to_string(failed_measurements) + " slots failed";
  if (shard_recorded.size() > 1)
    s += ", " + std::to_string(shard_recorded.size()) + " shards";
  if (!dropped_events.empty()) {
    s += ", dropped:";
    for (hpc::HpcEvent e : dropped_events) s += " " + hpc::to_string(e);
  }
  if (!unsupported_events.empty()) {
    s += ", unsupported:";
    for (hpc::HpcEvent e : unsupported_events) s += " " + hpc::to_string(e);
  }
  s += complete ? ", complete" : ", partial";
  return s;
}

const std::vector<double>& CampaignResult::of(
    hpc::HpcEvent event, std::size_t category_index) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  if (category_index >= per_event.size())
    throw InvalidArgument("CampaignResult::of: category index out of range");
  return per_event[category_index];
}

bool CampaignResult::has_event(hpc::HpcEvent event) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  for (const auto& cell : per_event)
    if (!cell.empty()) return true;
  return false;
}

double CampaignResult::mean(hpc::HpcEvent event,
                            std::size_t category_index) const {
  const auto& xs = of(event, category_index);
  if (xs.empty()) throw InvalidArgument("CampaignResult::mean: empty cell");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {

using Pools = std::vector<std::vector<const data::Example*>>;

// Measurement keys come from core/acquisition_keys.hpp so the replay
// sweep (sweep.cpp) keys its replayed measurements identically.
using acquisition::slot_key;
using acquisition::warmup_key;

std::uint64_t global_slot(const CampaignConfig& cfg, std::size_t c,
                          std::size_t s) {
  return acquisition::global_slot(cfg.interleave_categories,
                                  cfg.categories.size(),
                                  cfg.samples_per_category, c, s);
}

/// One shard's private acquisition state.  Nothing in here is touched by
/// more than one thread at a time: workers own it during a chunk, the
/// coordinator between chunks.
struct ShardState {
  explicit ShardState(hpc::Instrument ins) : instrument(std::move(ins)) {}

  std::size_t index = 0;
  hpc::Instrument instrument;
  std::unique_ptr<nn::InferencePlan> plan;
  nn::Tensor staged;

  /// Absolute sample-index range [lo, hi) this shard owns in every
  /// category, and the per-category cursor (next absolute index).
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::vector<std::size_t> cursor;
  /// Attempt ordinals already spent on each category's *current* slot.
  /// Persisted across acquire_slot calls so a failed slot that is
  /// re-picked continues with fresh measurement keys instead of
  /// replaying the exact draws that just failed (keyed providers would
  /// livelock otherwise).  Reset to 0 when the slot records.
  std::vector<std::size_t> slot_attempts;

  /// cells[event][category] — this shard's segment of each cell.
  std::array<std::vector<std::vector<double>>, hpc::kNumEvents> cells;

  std::array<bool, hpc::kNumEvents> active{};
  std::array<std::size_t, hpc::kNumEvents> consecutive_missing{};

  /// Shard-local diagnostic deltas (merged with the base at barriers).
  CampaignDiagnostics diag;
  /// failed_measurements inherited from the resumed state, so the
  /// per-shard abort threshold is cumulative like the serial one.
  std::size_t base_failed = 0;

  bool warmed = false;
  std::exception_ptr error;

  std::size_t remaining() const {
    std::size_t n = 0;
    for (std::size_t c : cursor) n += hi - c;
    return n;
  }
  std::size_t active_count() const {
    return static_cast<std::size_t>(
        std::count(active.begin(), active.end(), true));
  }
};

hpc::CounterSample raw_measure(ShardState& sh, const CampaignConfig& cfg,
                               const Pools& pools, std::size_t c,
                               std::size_t s, std::uint64_t key) {
  const auto& pool = pools[c];
  const data::Example& example = *pool[s % pool.size()];
  nn::image_to_tensor_into(example.image, sh.staged);
  hpc::CounterProvider& provider = sh.instrument.provider();
  (void)provider.set_measurement_key(key);
  provider.start();
  try {
    // The evaluator observes the classification of the user's input.
    (void)sh.plan->run(sh.staged, sh.instrument.sink(), cfg.kernel_mode);
  } catch (...) {
    // Never leave counters running; keep the workload's exception.
    try {
      provider.stop();
    } catch (...) {
    }
    throw;
  }
  provider.stop();
  return provider.read();
}

void drop_event(ShardState& sh, hpc::HpcEvent e) {
  const std::size_t idx = static_cast<std::size_t>(e);
  sh.active[idx] = false;
  sh.diag.dropped_events.push_back(e);
  std::size_t discarded = 0;
  for (auto& cell : sh.cells[idx]) {
    discarded += cell.size();
    cell.clear();
  }
  util::log_warn("campaign: shard ", sh.index, ": event ", hpc::to_string(e),
                 " permanently unavailable after ",
                 sh.diag.missing_event_counts[idx],
                 " missing samples; dropping its cells (", discarded,
                 " collected values discarded)");
}

/// Next slot under the configured schedule; nullopt when the shard's
/// ranges are full.  Interleaved mode picks the category this shard has
/// filled least (lowest index on ties), which reproduces the classic
/// round-robin order and resumes correctly from any uneven state.
std::optional<std::size_t> next_category(const ShardState& sh,
                                         const CampaignConfig& cfg) {
  std::optional<std::size_t> best;
  for (std::size_t c = 0; c < sh.cursor.size(); ++c) {
    if (sh.cursor[c] >= sh.hi) continue;
    if (cfg.interleave_categories) {
      if (!best || sh.cursor[c] - sh.lo < sh.cursor[*best] - sh.lo) best = c;
    } else {
      return c;
    }
  }
  return best;
}

/// One measurement slot: acquire until a valid sample lands in cell
/// (c, cursor[c]) or the retry budget dies.  Returns true if recorded.
bool acquire_slot(ShardState& sh, const CampaignConfig& cfg,
                  const Pools& pools, std::size_t c) {
  const std::size_t s = sh.cursor[c];
  const std::uint64_t slot = global_slot(cfg, c, s);
  std::size_t transient_attempts = 0;
  std::size_t invalid_attempts = 0;
  std::size_t outlier_retries = 0;
  std::size_t attempt = sh.slot_attempts[c];
  for (;;) {
    hpc::CounterSample sample;
    ++sh.diag.measurements_attempted;
    try {
      sample = raw_measure(sh, cfg, pools, c, s, slot_key(slot, attempt++));
    } catch (const TransientFailure& e) {
      ++sh.diag.transient_faults;
      ++transient_attempts;
      util::log_debug("campaign: transient fault (attempt ",
                      transient_attempts, "): ", e.what());
      if (transient_attempts >= cfg.retry.max_attempts) {
        sh.slot_attempts[c] = attempt;
        return false;
      }
      util::backoff_sleep(cfg.retry.backoff_for(transient_attempts));
      continue;
    }

    // Validate against the expected (active) event set.
    bool invalid = false;
    for (hpc::HpcEvent e : hpc::all_events()) {
      const std::size_t idx = static_cast<std::size_t>(e);
      if (!sh.active[idx]) continue;
      if (sample.has(e)) {
        sh.consecutive_missing[idx] = 0;
        continue;
      }
      invalid = true;
      ++sh.diag.missing_event_counts[idx];
      ++sh.consecutive_missing[idx];
    }
    if (invalid) {
      ++sh.diag.incomplete_samples;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (sh.active[idx] &&
            sh.consecutive_missing[idx] >= cfg.event_drop_after)
          drop_event(sh, e);
      }
      if (sh.active_count() == 0)
        throw Error("campaign: every monitored event became unavailable");
      // The sample may now be complete w.r.t. the reduced event set —
      // re-check before spending another measurement.
      invalid = false;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (sh.active[idx] && !sample.has(e)) invalid = true;
      }
      if (invalid) {
        ++invalid_attempts;
        if (invalid_attempts >= cfg.retry.max_attempts) {
          sh.slot_attempts[c] = attempt;
          return false;
        }
        continue;
      }
    }

    // Quarantine context-switch/interrupt pollution instead of letting
    // it widen (or fake) a distribution.
    if (cfg.outlier_mad_threshold > 0.0 &&
        outlier_retries < cfg.max_outlier_retries) {
      bool outlier = false;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (!sh.active[idx]) continue;
        const auto& cell = sh.cells[idx][c];
        if (cell.size() < cfg.outlier_min_baseline) continue;
        const double value = static_cast<double>(sample[e]);
        if (robust_isolation(cell, value, cfg.outlier_mad_floor) >
            cfg.outlier_mad_threshold) {
          outlier = true;
          ++sh.diag.outliers_quarantined;
          sh.diag.quarantined[idx].push_back(value);
        }
      }
      if (outlier) {
        ++outlier_retries;
        continue;  // re-measure this slot
      }
    }

    for (hpc::HpcEvent e : hpc::all_events()) {
      const std::size_t idx = static_cast<std::size_t>(e);
      if (sh.active[idx])
        sh.cells[idx][c].push_back(static_cast<double>(sample[e]));
    }
    ++sh.cursor[c];
    ++sh.diag.measurements_recorded;
    sh.slot_attempts[c] = 0;
    return true;
  }
}

/// Record `quota` measurements on this shard (failures retry the same
/// slot and do not consume quota; the cumulative failure cap aborts a
/// hopeless provider).  Runs on a worker thread; touches only `sh`.
void run_shard_chunk(ShardState& sh, const CampaignConfig& cfg,
                     const Pools& pools, std::size_t quota) {
  if (!sh.warmed) {
    // Warm-up: bring this shard's plan buffers and instrument (heap
    // layout, lazy initialization, cache frames) to a steady state before
    // its recorded acquisition starts.  Faults here are irrelevant — the
    // measurements are discarded anyway.
    for (std::size_t w = 0; w < cfg.warmup_measurements; ++w) {
      try {
        (void)raw_measure(sh, cfg, pools, w % pools.size(), 0,
                          warmup_key(sh.index, w));
      } catch (const TransientFailure&) {
      }
    }
    sh.warmed = true;
  }
  while (quota > 0) {
    const std::optional<std::size_t> c = next_category(sh, cfg);
    if (!c) break;  // defensive: the coordinator never over-assigns
    if (acquire_slot(sh, cfg, pools, *c)) {
      --quota;
    } else {
      ++sh.diag.failed_measurements;
      if (sh.base_failed + sh.diag.failed_measurements >=
          cfg.max_failed_measurements)
        throw Error("campaign: " +
                    std::to_string(sh.base_failed +
                                   sh.diag.failed_measurements) +
                    " measurement slots exhausted their retry budget; "
                    "giving up on this provider");
    }
  }
}

std::vector<hpc::HpcEvent> sorted_events(std::vector<hpc::HpcEvent> events) {
  std::sort(events.begin(), events.end());
  return events;
}

}  // namespace

Campaign::Campaign(const nn::Sequential& model, const data::Dataset& dataset,
                   hpc::InstrumentFactory& instruments)
    : model_(model), dataset_(dataset), instruments_(instruments) {}

Campaign::~Campaign() = default;

Campaign& Campaign::with_config(CampaignConfig config) {
  config_ = std::move(config);
  return *this;
}

Campaign& Campaign::on_progress(ProgressCallback callback, std::size_t every) {
  progress_ = std::move(callback);
  progress_every_ = every;
  return *this;
}

CampaignResult Campaign::run() {
  config_.validate();
  CampaignResult result;
  result.categories = config_.categories;
  for (int label : config_.categories) {
    if (label < 0 ||
        static_cast<std::size_t>(label) >= dataset_.num_classes())
      throw InvalidArgument("campaign: category label out of range");
    result.category_names.push_back(
        dataset_.class_names()[static_cast<std::size_t>(label)]);
  }
  for (auto& per_event : result.samples)
    per_event.assign(config_.categories.size(), {});
  return run_internal(std::move(result));
}

CampaignResult Campaign::resume_from(CampaignResult partial) {
  config_.validate();
  if (partial.categories != config_.categories)
    throw InvalidArgument(
        "campaign: resume state categories do not match config");
  for (const auto& per_event : partial.samples)
    if (per_event.size() != config_.categories.size())
      throw InvalidArgument("campaign: resume state has wrong category count");
  partial.diagnostics.resumed = true;
  partial.diagnostics.complete = false;
  return run_internal(std::move(partial));
}

CampaignResult Campaign::resume(const CampaignCheckpoint& checkpoint) {
  if (checkpoint.samples_per_category != config_.samples_per_category)
    throw InvalidArgument(
        "campaign: samples_per_category does not match checkpoint");
  if (checkpoint.interleave_categories != config_.interleave_categories)
    throw InvalidArgument(
        "campaign: schedule (interleaving) does not match checkpoint");
  if (checkpoint.kernel_mode != nn::to_string(config_.kernel_mode))
    throw InvalidArgument("campaign: kernel mode does not match checkpoint");
  util::log_info("campaign: resuming from checkpoint with ",
                 checkpoint.partial.diagnostics.measurements_recorded,
                 " recorded measurements");
  return resume_from(checkpoint.partial);
}

CampaignResult Campaign::run_internal(CampaignResult result) {
  const CampaignConfig& cfg = config_;
  const std::size_t ncat = cfg.categories.size();
  const std::size_t per_cat = cfg.samples_per_category;
  const std::size_t nshards = cfg.num_shards;

  Pools pools;
  for (std::size_t c = 0; c < ncat; ++c) {
    const int label = cfg.categories[c];
    pools.push_back(dataset_.examples_of(label));
    if (pools.back().empty())
      throw InvalidArgument("campaign: no examples of category " +
                            std::to_string(label));
    if (pools.back().size() < per_cat && !cfg.allow_image_reuse)
      throw InvalidArgument("campaign: not enough images of category " +
                            std::to_string(label));
  }

  CampaignDiagnostics base = std::move(result.diagnostics);
  result.diagnostics = CampaignDiagnostics{};

  // --- Mint one instrument per shard and agree on the event set. -------
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(nshards);
  for (std::size_t k = 0; k < nshards; ++k) {
    shards.push_back(
        std::make_unique<ShardState>(instruments_.create(k, nshards)));
    shards.back()->index = k;
  }
  const std::vector<hpc::HpcEvent> supported =
      sorted_events(shards.front()->instrument.provider().supported_events());
  for (const auto& sh : shards)
    if (sorted_events(sh->instrument.provider().supported_events()) !=
        supported)
      throw InvalidArgument(
          "campaign: instrument factory minted shards with different "
          "supported event sets");

  // Events this campaign acquires: what the provider offers, minus
  // anything a previous (checkpointed) run already declared lost.
  std::array<bool, hpc::kNumEvents> active{};
  for (hpc::HpcEvent e : supported) active[static_cast<std::size_t>(e)] = true;
  base.unsupported_events.clear();
  for (hpc::HpcEvent e : hpc::all_events())
    if (!active[static_cast<std::size_t>(e)])
      base.unsupported_events.push_back(e);
  std::vector<hpc::HpcEvent> dropped = base.dropped_events;
  for (hpc::HpcEvent e : dropped) active[static_cast<std::size_t>(e)] = false;
  const auto active_count = [&active] {
    return static_cast<std::size_t>(
        std::count(active.begin(), active.end(), true));
  };
  if (active_count() == 0)
    throw Error("campaign: provider offers no usable events");

  // --- Resume cursor: how many measurements each category cell holds.
  // Active events record atomically, so any active event's cell size is
  // the category's count; verify they agree (corrupt resume state would
  // silently skew distributions otherwise).
  std::vector<std::size_t> merged_count(ncat, 0);
  for (std::size_t c = 0; c < ncat; ++c) {
    std::optional<std::size_t> count;
    for (hpc::HpcEvent e : hpc::all_events()) {
      if (!active[static_cast<std::size_t>(e)]) continue;
      const std::size_t n =
          result.samples[static_cast<std::size_t>(e)][c].size();
      if (!count) count = n;
      if (*count != n)
        throw InvalidArgument(
            "campaign: inconsistent resume state (cell sizes differ)");
    }
    merged_count[c] = count.value_or(0);
    if (merged_count[c] > per_cat)
      throw InvalidArgument(
          "campaign: resume state holds more samples than requested");
  }

  // --- Partition the sample budget and split resumed cells. ------------
  // Shard k owns the contiguous absolute index range [lo_k, hi_k) of
  // every category; concatenating the shards' segments in shard order
  // therefore reproduces ascending sample-index (= serial) order.
  const std::size_t div = per_cat / nshards;
  const std::size_t rem = per_cat % nshards;
  for (std::size_t k = 0; k < nshards; ++k) {
    ShardState& sh = *shards[k];
    sh.lo = k * div + std::min(k, rem);
    sh.hi = sh.lo + div + (k < rem ? 1 : 0);
  }

  // A serial (one-row or absent) shard matrix means the merged cells are
  // plain prefixes and can be re-split for any shard count; a sharded
  // matrix encodes the concatenation segments and requires the same
  // num_shards.
  std::vector<std::vector<std::size_t>> init(
      nshards, std::vector<std::size_t>(ncat, 0));
  if (base.shard_recorded.size() <= 1) {
    for (std::size_t k = 0; k < nshards; ++k)
      for (std::size_t c = 0; c < ncat; ++c) {
        const std::size_t lo = shards[k]->lo;
        const std::size_t hi = shards[k]->hi;
        const std::size_t upto = std::min(merged_count[c], hi);
        init[k][c] = upto > lo ? upto - lo : 0;
      }
  } else if (base.shard_recorded.size() == nshards) {
    init = base.shard_recorded;
    for (const auto& row : init)
      if (row.size() != ncat)
        throw InvalidArgument(
            "campaign: resume state shard matrix has wrong category count");
    for (std::size_t c = 0; c < ncat; ++c) {
      std::size_t sum = 0;
      for (std::size_t k = 0; k < nshards; ++k) {
        if (init[k][c] > shards[k]->hi - shards[k]->lo)
          throw InvalidArgument(
              "campaign: resume state shard matrix exceeds shard range");
        sum += init[k][c];
      }
      if (sum != merged_count[c])
        throw InvalidArgument(
            "campaign: resume state shard matrix inconsistent with cells");
    }
  } else {
    throw InvalidArgument(
        "campaign: resume state was acquired with " +
        std::to_string(base.shard_recorded.size()) +
        " shards; set num_shards to match (serial checkpoints resume at "
        "any shard count)");
  }

  for (std::size_t k = 0; k < nshards; ++k) {
    ShardState& sh = *shards[k];
    sh.active = active;
    sh.cursor.assign(ncat, 0);
    sh.slot_attempts.assign(ncat, 0);
    for (auto& per_event : sh.cells) per_event.assign(ncat, {});
    for (std::size_t c = 0; c < ncat; ++c) sh.cursor[c] = sh.lo + init[k][c];
    sh.base_failed = base.failed_measurements;
  }
  for (hpc::HpcEvent e : hpc::all_events()) {
    const std::size_t idx = static_cast<std::size_t>(e);
    if (!active[idx]) continue;
    for (std::size_t c = 0; c < ncat; ++c) {
      const auto& merged_cell = result.samples[idx][c];
      std::size_t offset = 0;
      for (std::size_t k = 0; k < nshards; ++k) {
        auto& cell = shards[k]->cells[idx][c];
        cell.assign(merged_cell.begin() + static_cast<std::ptrdiff_t>(offset),
                    merged_cell.begin() +
                        static_cast<std::ptrdiff_t>(offset + init[k][c]));
        offset += init[k][c];
      }
    }
  }

  // --- Per-shard inference plans and staging tensors. ------------------
  // Built serially on the coordinating thread (plan construction runs a
  // warmup pass; keeping it here means workers only ever touch their own
  // preallocated state).
  for (auto& sh : shards) {
    nn::image_to_tensor_into(pools.front().front()->image, sh->staged);
    sh->plan = std::make_unique<nn::InferencePlan>(model_, sh->staged.shape());
  }

  // --- Chunked coordinator loop. ---------------------------------------
  const std::size_t threads =
      cfg.num_threads == 0 ? nshards : std::min(cfg.num_threads, nshards);
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  const std::size_t base_recorded = base.measurements_recorded;
  const std::size_t target_total = ncat * per_cat;
  std::size_t checkpoints_total = base.checkpoints_written;
  const std::size_t budget = cfg.stop_after_measurements == 0
                                 ? std::numeric_limits<std::size_t>::max()
                                 : cfg.stop_after_measurements;
  std::size_t recorded_this_run = 0;

  auto total_remaining = [&] {
    std::size_t n = 0;
    for (const auto& sh : shards) n += sh->remaining();
    return n;
  };

  // Merge snapshot: shard segments concatenated in shard order, shard
  // diagnostic deltas added onto the resumed base.
  auto merge = [&]() -> CampaignResult {
    CampaignResult merged;
    merged.categories = result.categories;
    merged.category_names = result.category_names;
    for (hpc::HpcEvent e : hpc::all_events()) {
      const std::size_t idx = static_cast<std::size_t>(e);
      auto& per_event = merged.samples[idx];
      per_event.assign(ncat, {});
      const bool is_dropped =
          std::find(dropped.begin(), dropped.end(), e) != dropped.end();
      if (is_dropped) continue;  // cells stay cleared
      if (!active[idx]) {
        per_event = result.samples[idx];  // unsupported: carried untouched
        continue;
      }
      for (std::size_t c = 0; c < ncat; ++c) {
        std::size_t n = 0;
        for (const auto& sh : shards) n += sh->cells[idx][c].size();
        per_event[c].reserve(n);
        for (const auto& sh : shards)
          per_event[c].insert(per_event[c].end(), sh->cells[idx][c].begin(),
                              sh->cells[idx][c].end());
      }
    }
    CampaignDiagnostics d = base;
    for (const auto& sh : shards) {
      d.measurements_attempted += sh->diag.measurements_attempted;
      d.measurements_recorded += sh->diag.measurements_recorded;
      d.transient_faults += sh->diag.transient_faults;
      d.failed_measurements += sh->diag.failed_measurements;
      d.incomplete_samples += sh->diag.incomplete_samples;
      d.outliers_quarantined += sh->diag.outliers_quarantined;
      for (std::size_t i = 0; i < hpc::kNumEvents; ++i) {
        d.missing_event_counts[i] += sh->diag.missing_event_counts[i];
        d.quarantined[i].insert(d.quarantined[i].end(),
                                sh->diag.quarantined[i].begin(),
                                sh->diag.quarantined[i].end());
      }
    }
    d.dropped_events = dropped;
    d.complete = total_remaining() == 0;
    d.checkpoints_written = checkpoints_total;
    d.shard_recorded.assign(nshards, std::vector<std::size_t>(ncat, 0));
    for (std::size_t k = 0; k < nshards; ++k)
      for (std::size_t c = 0; c < ncat; ++c)
        d.shard_recorded[k][c] = shards[k]->cursor[c] - shards[k]->lo;
    merged.diagnostics = std::move(d);
    return merged;
  };

  auto emit_progress = [&] {
    if (!progress_) return;
    CampaignProgress p;
    p.measurements_recorded = base_recorded + recorded_this_run;
    p.measurements_target = target_total;
    p.shards = nshards;
    p.checkpoints_written = checkpoints_total;
    progress_(p);
  };

  const std::size_t progress_chunk =
      progress_ ? (progress_every_ > 0
                       ? progress_every_
                       : std::max<std::size_t>(1, target_total / 16))
                : 0;

  for (;;) {
    const std::size_t remaining = total_remaining();
    if (remaining == 0) break;
    if (recorded_this_run >= budget) {
      util::log_info("campaign: stopping early after ", recorded_this_run,
                     " measurements (stop_after_measurements)");
      break;
    }

    std::size_t chunk = std::min(remaining, budget - recorded_this_run);
    if (cfg.checkpoint_every > 0) {
      const std::size_t done = base_recorded + recorded_this_run;
      chunk = std::min(
          chunk, cfg.checkpoint_every - (done % cfg.checkpoint_every));
    }
    if (progress_chunk > 0) chunk = std::min(chunk, progress_chunk);

    // Deterministic quota distribution: hand out one measurement at a
    // time round-robin to shards with budget left.  The allocation (and
    // therefore the merged result) depends only on cursor state, never on
    // worker timing.
    std::vector<std::size_t> quotas(nshards, 0);
    {
      std::size_t left = chunk;
      while (left > 0) {
        bool assigned = false;
        for (std::size_t k = 0; k < nshards && left > 0; ++k) {
          if (quotas[k] < shards[k]->remaining()) {
            ++quotas[k];
            --left;
            assigned = true;
          }
        }
        if (!assigned) break;
      }
      chunk -= left;  // unassignable leftovers (cannot happen in practice)
    }

    if (pool) {
      for (std::size_t k = 0; k < nshards; ++k) {
        if (quotas[k] == 0) continue;
        ShardState* sh = shards[k].get();
        const std::size_t quota = quotas[k];
        pool->submit([sh, &cfg, &pools, quota] {
          try {
            run_shard_chunk(*sh, cfg, pools, quota);
          } catch (...) {
            sh->error = std::current_exception();
          }
        });
      }
      pool->wait();
    } else {
      for (std::size_t k = 0; k < nshards; ++k) {
        if (quotas[k] == 0) continue;
        try {
          run_shard_chunk(*shards[k], cfg, pools, quotas[k]);
        } catch (...) {
          shards[k]->error = std::current_exception();
          break;
        }
      }
    }
    // Deterministic error propagation: the lowest-index failed shard
    // wins, regardless of completion order.
    for (const auto& sh : shards)
      if (sh->error) std::rethrow_exception(sh->error);

    // Propagate event drops across shards: an event one shard lost is
    // excluded campaign-wide (its cells are cleared at merge time).
    for (const auto& sh : shards)
      for (hpc::HpcEvent e : sh->diag.dropped_events)
        if (std::find(dropped.begin(), dropped.end(), e) == dropped.end())
          dropped.push_back(e);
    for (auto& sh : shards)
      for (hpc::HpcEvent e : dropped) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (!sh->active[idx]) continue;
        sh->active[idx] = false;
        for (auto& cell : sh->cells[idx]) cell.clear();
      }
    for (hpc::HpcEvent e : dropped) active[static_cast<std::size_t>(e)] = false;
    if (active_count() == 0)
      throw Error("campaign: every monitored event became unavailable");

    std::size_t failed_total = base.failed_measurements;
    for (const auto& sh : shards)
      failed_total += sh->diag.failed_measurements;
    if (failed_total >= cfg.max_failed_measurements)
      throw Error("campaign: " + std::to_string(failed_total) +
                  " measurement slots exhausted their retry budget; "
                  "giving up on this provider");

    recorded_this_run += chunk;

    if (cfg.checkpoint_every > 0 && chunk > 0 &&
        (base_recorded + recorded_this_run) % cfg.checkpoint_every == 0) {
      ++checkpoints_total;
      save_checkpoint(cfg.checkpoint_path, make_checkpoint(merge(), cfg));
    }
    emit_progress();
  }

  emit_progress();
  CampaignResult final_result = merge();
  const CampaignDiagnostics& d = final_result.diagnostics;
  if (!d.dropped_events.empty() || !d.unsupported_events.empty() ||
      d.failed_measurements > 0)
    util::log_info("campaign: degraded acquisition — ", d.summary());
  return final_result;
}

}  // namespace sce::core
