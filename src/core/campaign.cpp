#include "core/campaign.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace sce::core {

const std::vector<double>& CampaignResult::of(
    hpc::HpcEvent event, std::size_t category_index) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  if (category_index >= per_event.size())
    throw InvalidArgument("CampaignResult::of: category index out of range");
  return per_event[category_index];
}

double CampaignResult::mean(hpc::HpcEvent event,
                            std::size_t category_index) const {
  const auto& xs = of(event, category_index);
  if (xs.empty()) throw InvalidArgument("CampaignResult::mean: empty cell");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

CampaignResult run_campaign(const nn::Sequential& model,
                            const data::Dataset& dataset,
                            Instrument instrument,
                            const CampaignConfig& config) {
  if (config.categories.empty())
    throw InvalidArgument("run_campaign: no categories");
  if (config.samples_per_category == 0)
    throw InvalidArgument("run_campaign: samples_per_category must be > 0");

  CampaignResult result;
  result.categories = config.categories;
  for (int label : config.categories) {
    if (label < 0 ||
        static_cast<std::size_t>(label) >= dataset.num_classes())
      throw InvalidArgument("run_campaign: category label out of range");
    result.category_names.push_back(
        dataset.class_names()[static_cast<std::size_t>(label)]);
  }
  for (auto& per_event : result.samples)
    per_event.assign(config.categories.size(), {});

  std::vector<std::vector<const data::Example*>> pools;
  for (std::size_t c = 0; c < config.categories.size(); ++c) {
    const int label = config.categories[c];
    pools.push_back(dataset.examples_of(label));
    if (pools.back().empty())
      throw InvalidArgument("run_campaign: no examples of category " +
                            std::to_string(label));
    if (pools.back().size() < config.samples_per_category &&
        !config.allow_image_reuse)
      throw InvalidArgument("run_campaign: not enough images of category " +
                            std::to_string(label));
  }

  auto measure = [&](std::size_t c, std::size_t s, bool record) {
    const auto& pool = pools[c];
    const data::Example& example = *pool[s % pool.size()];
    const nn::Tensor input = nn::image_to_tensor(example.image);
    instrument.provider.start();
    // The evaluator observes the classification of the user's input.
    (void)model.forward(input, instrument.sink, config.kernel_mode);
    instrument.provider.stop();
    const hpc::CounterSample sample = instrument.provider.read();
    if (!record) return;
    for (hpc::HpcEvent e : hpc::all_events())
      result.samples[static_cast<std::size_t>(e)][c].push_back(
          static_cast<double>(sample[e]));
  };

  // Warm-up: bring the process (heap layout, lazy initialization) to a
  // steady state before the recorded acquisition starts.
  for (std::size_t w = 0; w < config.warmup_measurements; ++w)
    measure(w % pools.size(), 0, /*record=*/false);

  if (config.interleave_categories) {
    for (std::size_t s = 0; s < config.samples_per_category; ++s)
      for (std::size_t c = 0; c < config.categories.size(); ++c)
        measure(c, s, /*record=*/true);
  } else {
    for (std::size_t c = 0; c < config.categories.size(); ++c) {
      util::log_debug("campaign: category ", config.categories[c], " (",
                      result.category_names[c], "), ",
                      config.samples_per_category, " measurements");
      for (std::size_t s = 0; s < config.samples_per_category; ++s)
        measure(c, s, /*record=*/true);
    }
  }
  return result;
}

}  // namespace sce::core
