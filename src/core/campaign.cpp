#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/acquisition_keys.hpp"
#include "core/checkpoint.hpp"
#include "nn/plan.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace sce::core {

namespace {

/// Robust isolation score of `x` against `cell`: the distance from `x`
/// to the *nearest* value recorded so far, in robust-sigma units
/// (1.4826·MAD makes the scale consistent with sigma under normality).
/// Nearest-value distance, not distance-from-median, because a cell is
/// legitimately multimodal — it mixes the workload's distinct inputs —
/// and a recurring mode far from the median is not pollution.  The scale
/// is floored at `mad_floor` times the cell median so a near-constant
/// cell (MAD ~ 0) does not promote benign variation into arbitrarily
/// many sigmas.  Returns 0 when the scale is still degenerate — such a
/// cell carries no spread to judge outliers against.
double robust_isolation(const std::vector<double>& cell, double x,
                        double mad_floor) {
  const double med = stats::quantile(cell, 0.5);
  std::vector<double> deviations;
  deviations.reserve(cell.size());
  for (double v : cell) deviations.push_back(std::abs(v - med));
  const double mad = stats::quantile(deviations, 0.5);
  const double scale = std::max(1.4826 * mad, mad_floor * std::abs(med));
  if (scale <= 0.0) return 0.0;
  double nearest = std::numeric_limits<double>::infinity();
  for (double v : cell) nearest = std::min(nearest, std::abs(x - v));
  return nearest / scale;
}

}  // namespace

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted:
      return "completed";
    case StopReason::kMeasurementBudget:
      return "measurement-budget";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kShardStalled:
      return "shard-stalled";
  }
  return "completed";
}

StopReason parse_stop_reason(const std::string& name) {
  for (StopReason r :
       {StopReason::kCompleted, StopReason::kMeasurementBudget,
        StopReason::kCancelled, StopReason::kDeadline,
        StopReason::kShardStalled})
    if (to_string(r) == name) return r;
  throw InvalidArgument("campaign: unknown stop reason \"" + name + "\"");
}

void CampaignConfig::validate() const {
  if (categories.empty())
    throw ValidationError("campaign", "categories", "must not be empty");
  if (samples_per_category == 0)
    throw ValidationError("campaign", "samples_per_category", "must be > 0");
  if (num_shards == 0)
    throw ValidationError("campaign", "num_shards", "must be >= 1");
  retry.validate();
  if (checkpoint_every > 0 && checkpoint_path.empty())
    throw ValidationError("campaign", "checkpoint_path",
                          "required when checkpoint_every is set");
  if (event_drop_after == 0)
    throw ValidationError("campaign", "event_drop_after", "must be >= 1");
  if (outlier_mad_threshold < 0.0)
    throw ValidationError("campaign", "outlier_mad_threshold",
                          "must be >= 0");
  if (outlier_mad_floor < 0.0)
    throw ValidationError("campaign", "outlier_mad_floor", "must be >= 0");
  if (deadline < std::chrono::milliseconds::zero())
    throw ValidationError("campaign", "deadline", "must be >= 0");
  if (stall_timeout < std::chrono::milliseconds::zero())
    throw ValidationError("campaign", "stall_timeout", "must be >= 0");
  if (watchdog_poll < std::chrono::milliseconds::zero())
    throw ValidationError("campaign", "watchdog_poll", "must be >= 0");
}

bool CampaignDiagnostics::event_dropped(hpc::HpcEvent event) const {
  return std::find(dropped_events.begin(), dropped_events.end(), event) !=
         dropped_events.end();
}

bool CampaignDiagnostics::event_unsupported(hpc::HpcEvent event) const {
  return std::find(unsupported_events.begin(), unsupported_events.end(),
                   event) != unsupported_events.end();
}

std::string CampaignDiagnostics::summary() const {
  std::string s = "recorded " + std::to_string(measurements_recorded) + "/" +
                  std::to_string(measurements_attempted) + " attempts, " +
                  std::to_string(transient_faults) + " transient faults, " +
                  std::to_string(incomplete_samples) + " incomplete samples, " +
                  std::to_string(outliers_quarantined) + " outliers, " +
                  std::to_string(failed_measurements) + " slots failed";
  if (shard_recorded.size() > 1)
    s += ", " + std::to_string(shard_recorded.size()) + " shards";
  if (!dropped_events.empty()) {
    s += ", dropped:";
    for (hpc::HpcEvent e : dropped_events) s += " " + hpc::to_string(e);
  }
  if (!unsupported_events.empty()) {
    s += ", unsupported:";
    for (hpc::HpcEvent e : unsupported_events) s += " " + hpc::to_string(e);
  }
  if (!lost_instrument_shards.empty()) {
    s += ", lost instruments on shards:";
    for (std::size_t k : lost_instrument_shards) s += " " + std::to_string(k);
    s += " (" + std::to_string(failed_over_measurements) + " failed over)";
  }
  if (!stalled_shards.empty()) {
    s += ", stalled shards:";
    for (std::size_t k : stalled_shards) s += " " + std::to_string(k);
  }
  s += complete ? ", complete" : ", partial";
  if (stop_reason != StopReason::kCompleted)
    s += " (" + to_string(stop_reason) + ")";
  return s;
}

const std::vector<double>& CampaignResult::of(
    hpc::HpcEvent event, std::size_t category_index) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  if (category_index >= per_event.size())
    throw InvalidArgument("CampaignResult::of: category index out of range");
  return per_event[category_index];
}

bool CampaignResult::has_event(hpc::HpcEvent event) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  for (const auto& cell : per_event)
    if (!cell.empty()) return true;
  return false;
}

double CampaignResult::mean(hpc::HpcEvent event,
                            std::size_t category_index) const {
  const auto& xs = of(event, category_index);
  if (xs.empty()) throw InvalidArgument("CampaignResult::mean: empty cell");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {

using Pools = std::vector<std::vector<const data::Example*>>;

// Measurement keys come from core/acquisition_keys.hpp so the replay
// sweep (sweep.cpp) keys its replayed measurements identically.
using acquisition::slot_key;
using acquisition::warmup_key;

std::uint64_t global_slot(const CampaignConfig& cfg, std::size_t c,
                          std::size_t s) {
  return acquisition::global_slot(cfg.interleave_categories,
                                  cfg.categories.size(),
                                  cfg.samples_per_category, c, s);
}

/// One shard's private acquisition state.  Nothing in here is touched by
/// more than one thread at a time: workers own it during a chunk, the
/// coordinator between chunks.
///
/// The state and the instrument are deliberately separable: the work
/// side (ranges, cursors, cells, plan, staging buffers) describes WHAT
/// to acquire, the rig side (instrument + its health/warmth) describes
/// what to acquire it WITH.  When an instrument dies, the shard's work
/// state survives and is executed on a healthy shard's rig — and
/// because every measurement is keyed by its global slot index, the
/// values recorded on the adopting rig are the ones a fault-free run
/// would have recorded.
struct ShardState {
  explicit ShardState(hpc::Instrument ins) : instrument(std::move(ins)) {}

  std::size_t index = 0;
  hpc::Instrument instrument;
  std::unique_ptr<nn::InferencePlan> plan;
  nn::Tensor staged;

  // --- Rig health (about `instrument`, not about this shard's work) ---
  /// Consecutive retry-exhausted slots measured on this rig; reset by
  /// every recorded slot.  Crossing instrument_lost_after declares the
  /// rig lost.
  std::size_t consecutive_exhausted = 0;
  /// Set once this rig is declared lost; the shard's work is then
  /// executed on an adopting rig and this instrument is never touched
  /// again.
  bool instrument_lost = false;

  /// Absolute sample-index range [lo, hi) this shard owns in every
  /// category, and the per-category cursor (next absolute index).
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::vector<std::size_t> cursor;
  /// Attempt ordinals already spent on each category's *current* slot.
  /// Persisted across acquire_slot calls so a failed slot that is
  /// re-picked continues with fresh measurement keys instead of
  /// replaying the exact draws that just failed (keyed providers would
  /// livelock otherwise).  Reset to 0 when the slot records.
  std::vector<std::size_t> slot_attempts;

  /// cells[event][category] — this shard's segment of each cell.
  std::array<std::vector<std::vector<double>>, hpc::kNumEvents> cells;

  std::array<bool, hpc::kNumEvents> active{};
  std::array<std::size_t, hpc::kNumEvents> consecutive_missing{};

  /// Shard-local diagnostic deltas (merged with the base at barriers).
  CampaignDiagnostics diag;
  /// failed_measurements inherited from the resumed state, so the
  /// per-shard abort threshold is cumulative like the serial one.
  std::size_t base_failed = 0;

  bool warmed = false;
  std::exception_ptr error;

  std::size_t remaining() const {
    std::size_t n = 0;
    for (std::size_t c : cursor) n += hi - c;
    return n;
  }
  std::size_t active_count() const {
    return static_cast<std::size_t>(
        std::count(active.begin(), active.end(), true));
  }
};

/// Execution context shared by every chunk of one run: the schedule, the
/// run's cancel token (a child of the config token, deadline armed) and
/// the optional watchdog the executing lane must beat.
struct ChunkContext {
  const CampaignConfig& cfg;
  const Pools& pools;
  util::CancelToken token;
  util::Watchdog* watchdog = nullptr;
};

/// Measure work-state `work`'s staged input on `rig`'s instrument.  The
/// two are the same shard in the healthy case and differ under failover.
hpc::CounterSample raw_measure(ShardState& work, ShardState& rig,
                               const ChunkContext& ctx, std::size_t c,
                               std::size_t s, std::uint64_t key) {
  const auto& pool = ctx.pools[c];
  const data::Example& example = *pool[s % pool.size()];
  nn::image_to_tensor_into(example.image, work.staged);
  hpc::CounterProvider& provider = rig.instrument.provider();
  (void)provider.set_measurement_key(key);
  provider.start();
  try {
    // The evaluator observes the classification of the user's input.
    (void)work.plan->run(work.staged, rig.instrument.sink(),
                         ctx.cfg.kernel_mode);
  } catch (...) {
    // Never leave counters running; keep the workload's exception.
    try {
      provider.stop();
    } catch (...) {
    }
    throw;
  }
  provider.stop();
  return provider.read();
}

void drop_event(ShardState& sh, hpc::HpcEvent e) {
  const std::size_t idx = static_cast<std::size_t>(e);
  sh.active[idx] = false;
  sh.diag.dropped_events.push_back(e);
  std::size_t discarded = 0;
  for (auto& cell : sh.cells[idx]) {
    discarded += cell.size();
    cell.clear();
  }
  util::log_warn("campaign: shard ", sh.index, ": event ", hpc::to_string(e),
                 " permanently unavailable after ",
                 sh.diag.missing_event_counts[idx],
                 " missing samples; dropping its cells (", discarded,
                 " collected values discarded)");
}

/// Next slot under the configured schedule; nullopt when the shard's
/// ranges are full.  Interleaved mode picks the category this shard has
/// filled least (lowest index on ties), which reproduces the classic
/// round-robin order and resumes correctly from any uneven state.
std::optional<std::size_t> next_category(const ShardState& sh,
                                         const CampaignConfig& cfg) {
  std::optional<std::size_t> best;
  for (std::size_t c = 0; c < sh.cursor.size(); ++c) {
    if (sh.cursor[c] >= sh.hi) continue;
    if (cfg.interleave_categories) {
      if (!best || sh.cursor[c] - sh.lo < sh.cursor[*best] - sh.lo) best = c;
    } else {
      return c;
    }
  }
  return best;
}

/// One measurement slot: acquire until a valid sample lands in cell
/// (c, cursor[c]) or the retry budget dies.  Returns true if recorded.
/// Checks the run token and beats the watchdog once per attempt, so a
/// cancel lands within one measurement and a retry storm never reads as
/// a stall.
bool acquire_slot(ShardState& work, ShardState& rig, const ChunkContext& ctx,
                  std::size_t c) {
  const CampaignConfig& cfg = ctx.cfg;
  const std::size_t s = work.cursor[c];
  const std::uint64_t slot = global_slot(cfg, c, s);
  std::size_t transient_attempts = 0;
  std::size_t invalid_attempts = 0;
  std::size_t outlier_retries = 0;
  std::size_t attempt = work.slot_attempts[c];
  for (;;) {
    ctx.token.check();
    if (ctx.watchdog) ctx.watchdog->beat(rig.index);
    hpc::CounterSample sample;
    ++work.diag.measurements_attempted;
    try {
      sample = raw_measure(work, rig, ctx, c, s, slot_key(slot, attempt++));
    } catch (const TransientFailure& e) {
      ++work.diag.transient_faults;
      ++transient_attempts;
      util::log_debug("campaign: transient fault (attempt ",
                      transient_attempts, "): ", e.what());
      if (transient_attempts >= cfg.retry.max_attempts) {
        work.slot_attempts[c] = attempt;
        return false;
      }
      util::backoff_sleep(cfg.retry.backoff_for(transient_attempts));
      continue;
    }

    // Validate against the expected (active) event set.
    bool invalid = false;
    for (hpc::HpcEvent e : hpc::all_events()) {
      const std::size_t idx = static_cast<std::size_t>(e);
      if (!work.active[idx]) continue;
      if (sample.has(e)) {
        work.consecutive_missing[idx] = 0;
        continue;
      }
      invalid = true;
      ++work.diag.missing_event_counts[idx];
      ++work.consecutive_missing[idx];
    }
    if (invalid) {
      ++work.diag.incomplete_samples;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (work.active[idx] &&
            work.consecutive_missing[idx] >= cfg.event_drop_after)
          drop_event(work, e);
      }
      if (work.active_count() == 0)
        throw Error("campaign: every monitored event became unavailable");
      // The sample may now be complete w.r.t. the reduced event set —
      // re-check before spending another measurement.
      invalid = false;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (work.active[idx] && !sample.has(e)) invalid = true;
      }
      if (invalid) {
        ++invalid_attempts;
        if (invalid_attempts >= cfg.retry.max_attempts) {
          work.slot_attempts[c] = attempt;
          return false;
        }
        continue;
      }
    }

    // Quarantine context-switch/interrupt pollution instead of letting
    // it widen (or fake) a distribution.
    if (cfg.outlier_mad_threshold > 0.0 &&
        outlier_retries < cfg.max_outlier_retries) {
      bool outlier = false;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (!work.active[idx]) continue;
        const auto& cell = work.cells[idx][c];
        if (cell.size() < cfg.outlier_min_baseline) continue;
        const double value = static_cast<double>(sample[e]);
        if (robust_isolation(cell, value, cfg.outlier_mad_floor) >
            cfg.outlier_mad_threshold) {
          outlier = true;
          ++work.diag.outliers_quarantined;
          work.diag.quarantined[idx].push_back(value);
        }
      }
      if (outlier) {
        ++outlier_retries;
        continue;  // re-measure this slot
      }
    }

    for (hpc::HpcEvent e : hpc::all_events()) {
      const std::size_t idx = static_cast<std::size_t>(e);
      if (work.active[idx])
        work.cells[idx][c].push_back(static_cast<double>(sample[e]));
    }
    ++work.cursor[c];
    ++work.diag.measurements_recorded;
    work.slot_attempts[c] = 0;
    if (&work != &rig) ++work.diag.failed_over_measurements;
    rig.consecutive_exhausted = 0;
    return true;
  }
}

/// Record `quota` measurements from `work`'s ranges on `rig`'s
/// instrument (failures retry the same slot and do not consume quota;
/// the cumulative failure cap aborts a hopeless provider).  Runs on a
/// worker thread; touches only `work` and `rig`, which the coordinator
/// guarantees are owned by the same lane during the chunk.
void run_shard_chunk(ShardState& work, ShardState& rig,
                     const ChunkContext& ctx, std::size_t quota) {
  const CampaignConfig& cfg = ctx.cfg;
  if (!rig.warmed) {
    // Warm-up: bring this rig's plan buffers and instrument (heap
    // layout, lazy initialization, cache frames) to a steady state before
    // its recorded acquisition starts.  Faults here are irrelevant — the
    // measurements are discarded anyway.  Warming is a rig property: an
    // adopting rig already warmed for its own shard does not re-warm.
    for (std::size_t w = 0; w < cfg.warmup_measurements; ++w) {
      ctx.token.check();
      if (ctx.watchdog) ctx.watchdog->beat(rig.index);
      try {
        (void)raw_measure(rig, rig, ctx, w % ctx.pools.size(), 0,
                          warmup_key(rig.index, w));
      } catch (const TransientFailure&) {
      }
    }
    rig.warmed = true;
  }
  while (quota > 0) {
    const std::optional<std::size_t> c = next_category(work, cfg);
    if (!c) break;  // defensive: the coordinator never over-assigns
    if (acquire_slot(work, rig, ctx, *c)) {
      --quota;
    } else {
      ++work.diag.failed_measurements;
      ++rig.consecutive_exhausted;
      if (cfg.instrument_lost_after > 0 &&
          rig.consecutive_exhausted >= cfg.instrument_lost_after)
        throw InstrumentLost(
            "campaign: shard " + std::to_string(rig.index) + " instrument (" +
            rig.instrument.provider().name() + ") exhausted " +
            std::to_string(rig.consecutive_exhausted) +
            " consecutive slots; declaring it lost");
      if (work.base_failed + work.diag.failed_measurements >=
          cfg.max_failed_measurements)
        throw Error("campaign: " +
                    std::to_string(work.base_failed +
                                   work.diag.failed_measurements) +
                    " measurement slots exhausted their retry budget; "
                    "giving up on this provider");
    }
  }
}

std::vector<hpc::HpcEvent> sorted_events(std::vector<hpc::HpcEvent> events) {
  std::sort(events.begin(), events.end());
  return events;
}

}  // namespace

Campaign::Campaign(const nn::Sequential& model, const data::Dataset& dataset,
                   hpc::InstrumentFactory& instruments)
    : model_(model), dataset_(dataset), instruments_(instruments) {}

Campaign::~Campaign() = default;

Campaign& Campaign::with_config(CampaignConfig config) {
  config_ = std::move(config);
  return *this;
}

Campaign& Campaign::on_progress(ProgressCallback callback, std::size_t every) {
  progress_ = std::move(callback);
  progress_every_ = every;
  return *this;
}

CampaignResult Campaign::run() {
  config_.validate();
  CampaignResult result;
  result.categories = config_.categories;
  for (int label : config_.categories) {
    if (label < 0 ||
        static_cast<std::size_t>(label) >= dataset_.num_classes())
      throw InvalidArgument("campaign: category label out of range");
    result.category_names.push_back(
        dataset_.class_names()[static_cast<std::size_t>(label)]);
  }
  for (auto& per_event : result.samples)
    per_event.assign(config_.categories.size(), {});
  return run_internal(std::move(result));
}

CampaignResult Campaign::resume_from(CampaignResult partial) {
  config_.validate();
  if (partial.categories != config_.categories)
    throw InvalidArgument(
        "campaign: resume state categories do not match config");
  for (const auto& per_event : partial.samples)
    if (per_event.size() != config_.categories.size())
      throw InvalidArgument("campaign: resume state has wrong category count");
  partial.diagnostics.resumed = true;
  partial.diagnostics.complete = false;
  return run_internal(std::move(partial));
}

CampaignResult Campaign::resume(const CampaignCheckpoint& checkpoint) {
  if (checkpoint.samples_per_category != config_.samples_per_category)
    throw InvalidArgument(
        "campaign: samples_per_category does not match checkpoint");
  if (checkpoint.interleave_categories != config_.interleave_categories)
    throw InvalidArgument(
        "campaign: schedule (interleaving) does not match checkpoint");
  if (checkpoint.kernel_mode != nn::to_string(config_.kernel_mode))
    throw InvalidArgument("campaign: kernel mode does not match checkpoint");
  util::log_info("campaign: resuming from checkpoint with ",
                 checkpoint.partial.diagnostics.measurements_recorded,
                 " recorded measurements");
  return resume_from(checkpoint.partial);
}

CampaignResult Campaign::run_internal(CampaignResult result) {
  const CampaignConfig& cfg = config_;
  const std::size_t ncat = cfg.categories.size();
  const std::size_t per_cat = cfg.samples_per_category;
  const std::size_t nshards = cfg.num_shards;

  Pools pools;
  for (std::size_t c = 0; c < ncat; ++c) {
    const int label = cfg.categories[c];
    pools.push_back(dataset_.examples_of(label));
    if (pools.back().empty())
      throw InvalidArgument("campaign: no examples of category " +
                            std::to_string(label));
    if (pools.back().size() < per_cat && !cfg.allow_image_reuse)
      throw InvalidArgument("campaign: not enough images of category " +
                            std::to_string(label));
  }

  CampaignDiagnostics base = std::move(result.diagnostics);
  result.diagnostics = CampaignDiagnostics{};

  // --- Mint one instrument per shard and agree on the event set. -------
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(nshards);
  for (std::size_t k = 0; k < nshards; ++k) {
    shards.push_back(
        std::make_unique<ShardState>(instruments_.create(k, nshards)));
    shards.back()->index = k;
  }
  const std::vector<hpc::HpcEvent> supported =
      sorted_events(shards.front()->instrument.provider().supported_events());
  for (const auto& sh : shards)
    if (sorted_events(sh->instrument.provider().supported_events()) !=
        supported)
      throw InvalidArgument(
          "campaign: instrument factory minted shards with different "
          "supported event sets");

  // Events this campaign acquires: what the provider offers, minus
  // anything a previous (checkpointed) run already declared lost.
  std::array<bool, hpc::kNumEvents> active{};
  for (hpc::HpcEvent e : supported) active[static_cast<std::size_t>(e)] = true;
  base.unsupported_events.clear();
  for (hpc::HpcEvent e : hpc::all_events())
    if (!active[static_cast<std::size_t>(e)])
      base.unsupported_events.push_back(e);
  std::vector<hpc::HpcEvent> dropped = base.dropped_events;
  for (hpc::HpcEvent e : dropped) active[static_cast<std::size_t>(e)] = false;
  const auto active_count = [&active] {
    return static_cast<std::size_t>(
        std::count(active.begin(), active.end(), true));
  };
  if (active_count() == 0)
    throw Error("campaign: provider offers no usable events");

  // --- Resume cursor: how many measurements each category cell holds.
  // Active events record atomically, so any active event's cell size is
  // the category's count; verify they agree (corrupt resume state would
  // silently skew distributions otherwise).
  std::vector<std::size_t> merged_count(ncat, 0);
  for (std::size_t c = 0; c < ncat; ++c) {
    std::optional<std::size_t> count;
    for (hpc::HpcEvent e : hpc::all_events()) {
      if (!active[static_cast<std::size_t>(e)]) continue;
      const std::size_t n =
          result.samples[static_cast<std::size_t>(e)][c].size();
      if (!count) count = n;
      if (*count != n)
        throw InvalidArgument(
            "campaign: inconsistent resume state (cell sizes differ)");
    }
    merged_count[c] = count.value_or(0);
    if (merged_count[c] > per_cat)
      throw InvalidArgument(
          "campaign: resume state holds more samples than requested");
  }

  // --- Partition the sample budget and split resumed cells. ------------
  // Shard k owns the contiguous absolute index range [lo_k, hi_k) of
  // every category; concatenating the shards' segments in shard order
  // therefore reproduces ascending sample-index (= serial) order.
  const std::size_t div = per_cat / nshards;
  const std::size_t rem = per_cat % nshards;
  for (std::size_t k = 0; k < nshards; ++k) {
    ShardState& sh = *shards[k];
    sh.lo = k * div + std::min(k, rem);
    sh.hi = sh.lo + div + (k < rem ? 1 : 0);
  }

  // A serial (one-row or absent) shard matrix means the merged cells are
  // plain prefixes and can be re-split for any shard count; a sharded
  // matrix encodes the concatenation segments and requires the same
  // num_shards.
  std::vector<std::vector<std::size_t>> init(
      nshards, std::vector<std::size_t>(ncat, 0));
  if (base.shard_recorded.size() <= 1) {
    for (std::size_t k = 0; k < nshards; ++k)
      for (std::size_t c = 0; c < ncat; ++c) {
        const std::size_t lo = shards[k]->lo;
        const std::size_t hi = shards[k]->hi;
        const std::size_t upto = std::min(merged_count[c], hi);
        init[k][c] = upto > lo ? upto - lo : 0;
      }
  } else if (base.shard_recorded.size() == nshards) {
    init = base.shard_recorded;
    for (const auto& row : init)
      if (row.size() != ncat)
        throw InvalidArgument(
            "campaign: resume state shard matrix has wrong category count");
    for (std::size_t c = 0; c < ncat; ++c) {
      std::size_t sum = 0;
      for (std::size_t k = 0; k < nshards; ++k) {
        if (init[k][c] > shards[k]->hi - shards[k]->lo)
          throw InvalidArgument(
              "campaign: resume state shard matrix exceeds shard range");
        sum += init[k][c];
      }
      if (sum != merged_count[c])
        throw InvalidArgument(
            "campaign: resume state shard matrix inconsistent with cells");
    }
  } else {
    throw InvalidArgument(
        "campaign: resume state was acquired with " +
        std::to_string(base.shard_recorded.size()) +
        " shards; set num_shards to match (serial checkpoints resume at "
        "any shard count)");
  }

  for (std::size_t k = 0; k < nshards; ++k) {
    ShardState& sh = *shards[k];
    sh.active = active;
    sh.cursor.assign(ncat, 0);
    sh.slot_attempts.assign(ncat, 0);
    for (auto& per_event : sh.cells) per_event.assign(ncat, {});
    for (std::size_t c = 0; c < ncat; ++c) sh.cursor[c] = sh.lo + init[k][c];
    sh.base_failed = base.failed_measurements;
  }
  for (hpc::HpcEvent e : hpc::all_events()) {
    const std::size_t idx = static_cast<std::size_t>(e);
    if (!active[idx]) continue;
    for (std::size_t c = 0; c < ncat; ++c) {
      const auto& merged_cell = result.samples[idx][c];
      std::size_t offset = 0;
      for (std::size_t k = 0; k < nshards; ++k) {
        auto& cell = shards[k]->cells[idx][c];
        cell.assign(merged_cell.begin() + static_cast<std::ptrdiff_t>(offset),
                    merged_cell.begin() +
                        static_cast<std::ptrdiff_t>(offset + init[k][c]));
        offset += init[k][c];
      }
    }
  }

  // --- Per-shard inference plans and staging tensors. ------------------
  // Built serially on the coordinating thread (plan construction runs a
  // warmup pass; keeping it here means workers only ever touch their own
  // preallocated state).
  for (auto& sh : shards) {
    nn::image_to_tensor_into(pools.front().front()->image, sh->staged);
    sh->plan = std::make_unique<nn::InferencePlan>(model_, sh->staged.shape());
  }

  // --- Chunked coordinator loop. ---------------------------------------
  const std::size_t threads =
      cfg.num_threads == 0 ? nshards : std::min(cfg.num_threads, nshards);
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  // Supervision: the run executes under a child of the caller's token so
  // an external cancel stops this run without consuming the caller's
  // token for later runs, and the per-run deadline arms on the child.
  util::CancelToken token = cfg.cancel.child();
  if (cfg.deadline > std::chrono::milliseconds::zero())
    token.set_deadline_after(cfg.deadline);

  std::vector<std::size_t> stalled_lanes;
  std::mutex stalled_mutex;
  std::unique_ptr<util::Watchdog> watchdog;
  if (cfg.stall_timeout > std::chrono::milliseconds::zero()) {
    util::WatchdogConfig wcfg;
    wcfg.quiet_window = cfg.stall_timeout;
    wcfg.poll_interval = cfg.watchdog_poll;
    watchdog = std::make_unique<util::Watchdog>(
        nshards, wcfg, [&token, &stalled_lanes, &stalled_mutex](
                           std::size_t lane) {
          {
            std::lock_guard<std::mutex> lock(stalled_mutex);
            stalled_lanes.push_back(lane);
          }
          token.cancel_with(util::CancelReason::kStalled,
                            "shard " + std::to_string(lane) +
                                " made no progress within the stall window");
        });
  }

  // Failover bookkeeping: rig_of[k] names the shard whose *instrument*
  // executes shard k's work.  Identity while everything is healthy; when
  // a rig is declared lost its work states are re-homed round-robin over
  // the healthy rigs (deterministically, in ascending state order).
  std::vector<std::size_t> rig_of(nshards);
  for (std::size_t k = 0; k < nshards; ++k) rig_of[k] = k;
  std::vector<std::size_t> lost_rigs = base.lost_instrument_shards;

  const std::size_t base_recorded = base.measurements_recorded;
  const std::size_t target_total = ncat * per_cat;
  std::size_t checkpoints_total = base.checkpoints_written;
  const std::size_t budget = cfg.stop_after_measurements == 0
                                 ? std::numeric_limits<std::size_t>::max()
                                 : cfg.stop_after_measurements;
  std::size_t recorded_this_run = 0;
  StopReason stop_reason = StopReason::kCompleted;

  auto total_remaining = [&] {
    std::size_t n = 0;
    for (const auto& sh : shards) n += sh->remaining();
    return n;
  };

  // Merge snapshot: shard segments concatenated in shard order, shard
  // diagnostic deltas added onto the resumed base.
  auto merge = [&]() -> CampaignResult {
    CampaignResult merged;
    merged.categories = result.categories;
    merged.category_names = result.category_names;
    for (hpc::HpcEvent e : hpc::all_events()) {
      const std::size_t idx = static_cast<std::size_t>(e);
      auto& per_event = merged.samples[idx];
      per_event.assign(ncat, {});
      const bool is_dropped =
          std::find(dropped.begin(), dropped.end(), e) != dropped.end();
      if (is_dropped) continue;  // cells stay cleared
      if (!active[idx]) {
        per_event = result.samples[idx];  // unsupported: carried untouched
        continue;
      }
      for (std::size_t c = 0; c < ncat; ++c) {
        std::size_t n = 0;
        for (const auto& sh : shards) n += sh->cells[idx][c].size();
        per_event[c].reserve(n);
        for (const auto& sh : shards)
          per_event[c].insert(per_event[c].end(), sh->cells[idx][c].begin(),
                              sh->cells[idx][c].end());
      }
    }
    CampaignDiagnostics d = base;
    for (const auto& sh : shards) {
      d.measurements_attempted += sh->diag.measurements_attempted;
      d.measurements_recorded += sh->diag.measurements_recorded;
      d.transient_faults += sh->diag.transient_faults;
      d.failed_measurements += sh->diag.failed_measurements;
      d.incomplete_samples += sh->diag.incomplete_samples;
      d.outliers_quarantined += sh->diag.outliers_quarantined;
      d.failed_over_measurements += sh->diag.failed_over_measurements;
      for (std::size_t i = 0; i < hpc::kNumEvents; ++i) {
        d.missing_event_counts[i] += sh->diag.missing_event_counts[i];
        d.quarantined[i].insert(d.quarantined[i].end(),
                                sh->diag.quarantined[i].begin(),
                                sh->diag.quarantined[i].end());
      }
    }
    d.dropped_events = dropped;
    d.complete = total_remaining() == 0;
    d.checkpoints_written = checkpoints_total;
    d.stop_reason = d.complete ? StopReason::kCompleted : stop_reason;
    d.lost_instrument_shards = lost_rigs;
    std::sort(d.lost_instrument_shards.begin(),
              d.lost_instrument_shards.end());
    d.lost_instrument_shards.erase(
        std::unique(d.lost_instrument_shards.begin(),
                    d.lost_instrument_shards.end()),
        d.lost_instrument_shards.end());
    {
      std::lock_guard<std::mutex> lock(stalled_mutex);
      d.stalled_shards = base.stalled_shards;
      d.stalled_shards.insert(d.stalled_shards.end(), stalled_lanes.begin(),
                              stalled_lanes.end());
    }
    std::sort(d.stalled_shards.begin(), d.stalled_shards.end());
    d.stalled_shards.erase(
        std::unique(d.stalled_shards.begin(), d.stalled_shards.end()),
        d.stalled_shards.end());
    d.shard_recorded.assign(nshards, std::vector<std::size_t>(ncat, 0));
    for (std::size_t k = 0; k < nshards; ++k)
      for (std::size_t c = 0; c < ncat; ++c)
        d.shard_recorded[k][c] = shards[k]->cursor[c] - shards[k]->lo;
    merged.diagnostics = std::move(d);
    return merged;
  };

  auto emit_progress = [&] {
    if (!progress_) return;
    CampaignProgress p;
    p.measurements_recorded = base_recorded + recorded_this_run;
    p.measurements_target = target_total;
    p.shards = nshards;
    p.checkpoints_written = checkpoints_total;
    progress_(p);
  };

  const std::size_t progress_chunk =
      progress_ ? (progress_every_ > 0
                       ? progress_every_
                       : std::max<std::size_t>(1, target_total / 16))
                : 0;

  // Flush a checkpoint unconditionally — the supervision contract: a
  // cancelled, deadline'd or stalled run leaves a resumable file behind
  // whenever a checkpoint path is configured (even with periodic
  // checkpointing off).
  auto flush_checkpoint = [&] {
    if (cfg.checkpoint_path.empty()) return;
    ++checkpoints_total;
    save_checkpoint(cfg.checkpoint_path, make_checkpoint(merge(), cfg));
  };

  // Declare rig `dead` lost and re-home every work state it was
  // executing.  Returns false when no healthy rig remains.
  auto declare_lost = [&](std::size_t dead) -> bool {
    shards[dead]->instrument_lost = true;
    if (std::find(lost_rigs.begin(), lost_rigs.end(), dead) ==
        lost_rigs.end())
      lost_rigs.push_back(dead);
    std::vector<std::size_t> healthy;
    for (std::size_t k = 0; k < nshards; ++k)
      if (!shards[k]->instrument_lost) healthy.push_back(k);
    if (healthy.empty()) return false;
    std::size_t next = 0;
    for (std::size_t k = 0; k < nshards; ++k) {
      if (!shards[rig_of[k]]->instrument_lost) continue;
      rig_of[k] = healthy[next++ % healthy.size()];
      // Fresh attempt ordinals on the adopting rig: the dead
      // instrument's burnt attempts must not shift this slot's
      // measurement keys, or the adopted values would diverge from a
      // fault-free run's.
      std::fill(shards[k]->slot_attempts.begin(),
                shards[k]->slot_attempts.end(), 0);
    }
    util::log_warn("campaign: shard ", dead,
                   " instrument lost; re-homing its work onto ",
                   healthy.size(), " healthy shard(s)");
    return true;
  };

  // next_checkpoint_at tracks the cadence as a running multiple rather
  // than an exact modulo: a chunk cut short by a cancel or a failover
  // must not silently skip the boundary it was aimed at.
  std::size_t next_checkpoint_at =
      cfg.checkpoint_every > 0
          ? (base_recorded / cfg.checkpoint_every + 1) * cfg.checkpoint_every
          : std::numeric_limits<std::size_t>::max();

  for (;;) {
    const std::size_t remaining = total_remaining();
    if (remaining == 0) break;
    if (recorded_this_run >= budget) {
      util::log_info("campaign: stopping early after ", recorded_this_run,
                     " measurements (stop_after_measurements)");
      stop_reason = StopReason::kMeasurementBudget;
      break;
    }
    if (token.cancelled()) break;  // classified after the loop

    std::size_t chunk = std::min(remaining, budget - recorded_this_run);
    {
      const std::size_t done = base_recorded + recorded_this_run;
      if (next_checkpoint_at != std::numeric_limits<std::size_t>::max())
        chunk = std::min(chunk, next_checkpoint_at - done);
    }
    if (progress_chunk > 0) chunk = std::min(chunk, progress_chunk);

    // Deterministic quota distribution: hand out one measurement at a
    // time round-robin to shards with budget left.  The allocation (and
    // therefore the merged result) depends only on cursor state, never on
    // worker timing.
    std::vector<std::size_t> quotas(nshards, 0);
    {
      std::size_t left = chunk;
      while (left > 0) {
        bool assigned = false;
        for (std::size_t k = 0; k < nshards && left > 0; ++k) {
          if (quotas[k] < shards[k]->remaining()) {
            ++quotas[k];
            --left;
            assigned = true;
          }
        }
        if (!assigned) break;
      }
      chunk -= left;  // unassignable leftovers (cannot happen in practice)
    }

    // Group work states by executing rig: one lane per healthy rig, each
    // running its states sequentially in ascending state order so the
    // rig's read-count trajectory is reproducible.
    std::vector<std::vector<std::size_t>> lane_states(nshards);
    for (std::size_t k = 0; k < nshards; ++k)
      if (quotas[k] > 0) lane_states[rig_of[k]].push_back(k);

    // New watchdog cycle with no lane armed yet: each lane arms itself
    // when its task actually starts executing and retires itself when it
    // finishes, so lanes queued behind a small pool — or already done
    // while a sibling still measures — cannot be mistaken for stalls.
    if (watchdog) watchdog->arm(std::vector<bool>(nshards, false));

    ChunkContext ctx{cfg, pools, token, watchdog.get()};
    auto run_lane = [&ctx, &shards, &quotas](
                        ShardState* rig, const std::vector<std::size_t>& st) {
      if (ctx.watchdog) ctx.watchdog->arm_lane(rig->index);
      try {
        for (std::size_t k : st)
          run_shard_chunk(*shards[k], *rig, ctx, quotas[k]);
      } catch (...) {
        if (ctx.watchdog) ctx.watchdog->clear(rig->index);
        throw;
      }
      if (ctx.watchdog) ctx.watchdog->clear(rig->index);
    };

    if (pool) {
      for (std::size_t r = 0; r < nshards; ++r) {
        if (lane_states[r].empty()) continue;
        ShardState* rig = shards[r].get();
        const std::vector<std::size_t>& st = lane_states[r];
        pool->submit(token, [&run_lane, rig, &st] {
          try {
            run_lane(rig, st);
          } catch (...) {
            rig->error = std::current_exception();
          }
        });
      }
      pool->wait();
    } else {
      for (std::size_t r = 0; r < nshards; ++r) {
        if (lane_states[r].empty()) continue;
        try {
          run_lane(shards[r].get(), lane_states[r]);
        } catch (...) {
          shards[r]->error = std::current_exception();
          break;
        }
      }
    }
    if (watchdog) watchdog->disarm();

    // Barrier-time error triage, in deterministic (lane-index) order:
    // real defects rethrow (lowest lane wins), InstrumentLost marks the
    // rig dead and re-homes its work, Interrupted subtypes fall through
    // to the token classification below.
    std::vector<std::size_t> dead_lanes;
    for (std::size_t r = 0; r < nshards; ++r) {
      if (!shards[r]->error) continue;
      std::exception_ptr err = shards[r]->error;
      shards[r]->error = nullptr;
      try {
        std::rethrow_exception(err);
      } catch (const Interrupted&) {
        // Cooperative unwind from token.check(); the token holds the
        // reason and is classified once, below.
      } catch (const InstrumentLost&) {
        dead_lanes.push_back(r);
      }
      // Anything else escapes run_internal via this rethrow.
    }
    for (std::size_t r : dead_lanes)
      if (!declare_lost(r)) {
        flush_checkpoint();
        throw InstrumentLost(
            "campaign: every shard instrument was lost; wrote checkpoint "
            "with " +
            std::to_string(base_recorded + recorded_this_run) +
            " measurements recorded");
      }

    // Propagate event drops across shards: an event one shard lost is
    // excluded campaign-wide (its cells are cleared at merge time).
    for (const auto& sh : shards)
      for (hpc::HpcEvent e : sh->diag.dropped_events)
        if (std::find(dropped.begin(), dropped.end(), e) == dropped.end())
          dropped.push_back(e);
    for (auto& sh : shards)
      for (hpc::HpcEvent e : dropped) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (!sh->active[idx]) continue;
        sh->active[idx] = false;
        for (auto& cell : sh->cells[idx]) cell.clear();
      }
    for (hpc::HpcEvent e : dropped) active[static_cast<std::size_t>(e)] = false;
    if (active_count() == 0)
      throw Error("campaign: every monitored event became unavailable");

    std::size_t failed_total = base.failed_measurements;
    for (const auto& sh : shards)
      failed_total += sh->diag.failed_measurements;
    if (failed_total >= cfg.max_failed_measurements)
      throw Error("campaign: " + std::to_string(failed_total) +
                  " measurement slots exhausted their retry budget; "
                  "giving up on this provider");

    // Recomputed, not accumulated: a chunk interrupted by a cancel or a
    // dying instrument records fewer measurements than its quota.
    recorded_this_run = 0;
    for (const auto& sh : shards)
      recorded_this_run += sh->diag.measurements_recorded;

    const std::size_t done = base_recorded + recorded_this_run;
    if (cfg.checkpoint_every > 0 && done >= next_checkpoint_at) {
      ++checkpoints_total;
      save_checkpoint(cfg.checkpoint_path, make_checkpoint(merge(), cfg));
      next_checkpoint_at =
          (done / cfg.checkpoint_every + 1) * cfg.checkpoint_every;
    }
    emit_progress();
  }

  // Supervision stop: classify the token once, flush a resumable
  // checkpoint, and return Partial instead of throwing — interruption is
  // policy, not failure.
  if (total_remaining() > 0 && token.cancelled()) {
    switch (token.reason()) {
      case util::CancelReason::kDeadline:
        stop_reason = StopReason::kDeadline;
        break;
      case util::CancelReason::kStalled:
        stop_reason = StopReason::kShardStalled;
        break;
      default:
        stop_reason = StopReason::kCancelled;
        break;
    }
    util::log_info("campaign: stopping (", to_string(stop_reason),
                   "): ", token.message());
    flush_checkpoint();
  }

  emit_progress();
  CampaignResult final_result = merge();
  const CampaignDiagnostics& d = final_result.diagnostics;
  if (!d.dropped_events.empty() || !d.unsupported_events.empty() ||
      d.failed_measurements > 0 || !d.complete)
    util::log_info("campaign: degraded acquisition — ", d.summary());
  return final_result;
}

}  // namespace sce::core
