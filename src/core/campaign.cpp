#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/checkpoint.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace sce::core {

namespace {

/// Robust isolation score of `x` against `cell`: the distance from `x`
/// to the *nearest* value recorded so far, in robust-sigma units
/// (1.4826·MAD makes the scale consistent with sigma under normality).
/// Nearest-value distance, not distance-from-median, because a cell is
/// legitimately multimodal — it mixes the workload's distinct inputs —
/// and a recurring mode far from the median is not pollution.  The scale
/// is floored at `mad_floor` times the cell median so a near-constant
/// cell (MAD ~ 0) does not promote benign variation into arbitrarily
/// many sigmas.  Returns 0 when the scale is still degenerate — such a
/// cell carries no spread to judge outliers against.
double robust_isolation(const std::vector<double>& cell, double x,
                        double mad_floor) {
  const double med = stats::quantile(cell, 0.5);
  std::vector<double> deviations;
  deviations.reserve(cell.size());
  for (double v : cell) deviations.push_back(std::abs(v - med));
  const double mad = stats::quantile(deviations, 0.5);
  const double scale = std::max(1.4826 * mad, mad_floor * std::abs(med));
  if (scale <= 0.0) return 0.0;
  double nearest = std::numeric_limits<double>::infinity();
  for (double v : cell) nearest = std::min(nearest, std::abs(x - v));
  return nearest / scale;
}

}  // namespace

bool CampaignDiagnostics::event_dropped(hpc::HpcEvent event) const {
  return std::find(dropped_events.begin(), dropped_events.end(), event) !=
         dropped_events.end();
}

bool CampaignDiagnostics::event_unsupported(hpc::HpcEvent event) const {
  return std::find(unsupported_events.begin(), unsupported_events.end(),
                   event) != unsupported_events.end();
}

std::string CampaignDiagnostics::summary() const {
  std::string s = "recorded " + std::to_string(measurements_recorded) + "/" +
                  std::to_string(measurements_attempted) + " attempts, " +
                  std::to_string(transient_faults) + " transient faults, " +
                  std::to_string(incomplete_samples) + " incomplete samples, " +
                  std::to_string(outliers_quarantined) + " outliers, " +
                  std::to_string(failed_measurements) + " slots failed";
  if (!dropped_events.empty()) {
    s += ", dropped:";
    for (hpc::HpcEvent e : dropped_events) s += " " + hpc::to_string(e);
  }
  if (!unsupported_events.empty()) {
    s += ", unsupported:";
    for (hpc::HpcEvent e : unsupported_events) s += " " + hpc::to_string(e);
  }
  s += complete ? ", complete" : ", partial";
  return s;
}

const std::vector<double>& CampaignResult::of(
    hpc::HpcEvent event, std::size_t category_index) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  if (category_index >= per_event.size())
    throw InvalidArgument("CampaignResult::of: category index out of range");
  return per_event[category_index];
}

bool CampaignResult::has_event(hpc::HpcEvent event) const {
  const auto& per_event = samples[static_cast<std::size_t>(event)];
  for (const auto& cell : per_event)
    if (!cell.empty()) return true;
  return false;
}

double CampaignResult::mean(hpc::HpcEvent event,
                            std::size_t category_index) const {
  const auto& xs = of(event, category_index);
  if (xs.empty()) throw InvalidArgument("CampaignResult::mean: empty cell");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {

/// The shared acquisition loop: fills `result` (which may carry resumed
/// partial state) up to config.samples_per_category per cell.
CampaignResult run_campaign_impl(const nn::Sequential& model,
                                 const data::Dataset& dataset,
                                 Instrument instrument,
                                 const CampaignConfig& config,
                                 CampaignResult result) {
  config.retry.validate();
  if (config.checkpoint_every > 0 && config.checkpoint_path.empty())
    throw InvalidArgument(
        "run_campaign: checkpoint_every set but checkpoint_path empty");
  if (config.event_drop_after == 0)
    throw InvalidArgument("run_campaign: event_drop_after must be >= 1");

  CampaignDiagnostics& diag = result.diagnostics;
  const std::size_t ncat = config.categories.size();

  std::vector<std::vector<const data::Example*>> pools;
  for (std::size_t c = 0; c < ncat; ++c) {
    const int label = config.categories[c];
    pools.push_back(dataset.examples_of(label));
    if (pools.back().empty())
      throw InvalidArgument("run_campaign: no examples of category " +
                            std::to_string(label));
    if (pools.back().size() < config.samples_per_category &&
        !config.allow_image_reuse)
      throw InvalidArgument("run_campaign: not enough images of category " +
                            std::to_string(label));
  }

  // Events this campaign acquires: what the provider offers, minus
  // anything a previous (checkpointed) run already declared lost.
  std::array<bool, hpc::kNumEvents> active{};
  diag.unsupported_events.clear();
  {
    const std::vector<hpc::HpcEvent> supported =
        instrument.provider.supported_events();
    for (hpc::HpcEvent e : supported)
      active[static_cast<std::size_t>(e)] = true;
    for (hpc::HpcEvent e : hpc::all_events())
      if (!active[static_cast<std::size_t>(e)])
        diag.unsupported_events.push_back(e);
    for (hpc::HpcEvent e : diag.dropped_events)
      active[static_cast<std::size_t>(e)] = false;
  }
  auto active_count = [&] {
    return static_cast<std::size_t>(
        std::count(active.begin(), active.end(), true));
  };
  if (active_count() == 0)
    throw Error("run_campaign: provider offers no usable events");

  // The acquisition cursor: how many measurements each category cell
  // holds.  Active events record atomically, so any active event's cell
  // size is the category's count; verify they agree (corrupt resume
  // state would silently skew distributions otherwise).
  std::vector<std::size_t> recorded(ncat, 0);
  for (std::size_t c = 0; c < ncat; ++c) {
    std::optional<std::size_t> count;
    for (hpc::HpcEvent e : hpc::all_events()) {
      if (!active[static_cast<std::size_t>(e)]) continue;
      const std::size_t n =
          result.samples[static_cast<std::size_t>(e)][c].size();
      if (!count) count = n;
      if (*count != n)
        throw InvalidArgument(
            "run_campaign: inconsistent resume state (cell sizes differ)");
    }
    recorded[c] = count.value_or(0);
    if (recorded[c] > config.samples_per_category)
      throw InvalidArgument(
          "run_campaign: resume state holds more samples than requested");
  }

  // One inference plan per campaign: activation buffers and per-layer
  // scratch are preallocated here and reused across every sample (and
  // across checkpoint/resume), so the measured counters capture the
  // kernels rather than allocator noise.  The staging tensor keeps the
  // image -> tensor conversion allocation-free too.
  nn::Tensor staged_input;
  nn::image_to_tensor_into(pools.front().front()->image, staged_input);
  nn::InferencePlan plan = model.plan(staged_input.shape());

  auto raw_measure = [&](std::size_t c, std::size_t s) -> hpc::CounterSample {
    const auto& pool = pools[c];
    const data::Example& example = *pool[s % pool.size()];
    nn::image_to_tensor_into(example.image, staged_input);
    instrument.provider.start();
    try {
      // The evaluator observes the classification of the user's input.
      (void)plan.run(staged_input, instrument.sink, config.kernel_mode);
    } catch (...) {
      // Never leave counters running; keep the workload's exception.
      try {
        instrument.provider.stop();
      } catch (...) {
      }
      throw;
    }
    instrument.provider.stop();
    return instrument.provider.read();
  };

  auto drop_event = [&](hpc::HpcEvent e) {
    active[static_cast<std::size_t>(e)] = false;
    diag.dropped_events.push_back(e);
    std::size_t discarded = 0;
    for (auto& cell : result.samples[static_cast<std::size_t>(e)]) {
      discarded += cell.size();
      cell.clear();
    }
    util::log_warn("campaign: event ", hpc::to_string(e),
                   " permanently unavailable after ",
                   diag.missing_event_counts[static_cast<std::size_t>(e)],
                   " missing samples; dropping its cells (", discarded,
                   " collected values discarded)");
  };

  // Streaks of consecutive samples an event has been missing from; a
  // streak reaching config.event_drop_after declares the event lost.
  std::array<std::size_t, hpc::kNumEvents> consecutive_missing{};

  // One measurement slot: acquire until a valid sample lands in cell
  // (c, recorded[c]) or the retry budget dies.  Returns true if recorded.
  auto acquire_slot = [&](std::size_t c) -> bool {
    const std::size_t s = recorded[c];
    std::size_t transient_attempts = 0;
    std::size_t invalid_attempts = 0;
    std::size_t outlier_retries = 0;
    for (;;) {
      hpc::CounterSample sample;
      ++diag.measurements_attempted;
      try {
        sample = raw_measure(c, s);
      } catch (const TransientFailure& e) {
        ++diag.transient_faults;
        ++transient_attempts;
        util::log_debug("campaign: transient fault (attempt ",
                        transient_attempts, "): ", e.what());
        if (transient_attempts >= config.retry.max_attempts) return false;
        util::backoff_sleep(config.retry.backoff_for(transient_attempts));
        continue;
      }

      // Validate against the expected (active) event set.
      bool invalid = false;
      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (!active[idx]) continue;
        if (sample.has(e)) {
          consecutive_missing[idx] = 0;
          continue;
        }
        invalid = true;
        ++diag.missing_event_counts[idx];
        ++consecutive_missing[idx];
      }
      if (invalid) {
        ++diag.incomplete_samples;
        for (hpc::HpcEvent e : hpc::all_events()) {
          const std::size_t idx = static_cast<std::size_t>(e);
          if (active[idx] && consecutive_missing[idx] >= config.event_drop_after)
            drop_event(e);
        }
        if (active_count() == 0)
          throw Error(
              "run_campaign: every monitored event became unavailable");
        // The sample may now be complete w.r.t. the reduced event set —
        // re-check before spending another measurement.
        invalid = false;
        for (hpc::HpcEvent e : hpc::all_events()) {
          const std::size_t idx = static_cast<std::size_t>(e);
          if (active[idx] && !sample.has(e)) invalid = true;
        }
        if (invalid) {
          ++invalid_attempts;
          if (invalid_attempts >= config.retry.max_attempts) return false;
          continue;
        }
      }

      // Quarantine context-switch/interrupt pollution instead of letting
      // it widen (or fake) a distribution.
      if (config.outlier_mad_threshold > 0.0 &&
          outlier_retries < config.max_outlier_retries) {
        bool outlier = false;
        for (hpc::HpcEvent e : hpc::all_events()) {
          const std::size_t idx = static_cast<std::size_t>(e);
          if (!active[idx]) continue;
          const auto& cell = result.samples[idx][c];
          if (cell.size() < config.outlier_min_baseline) continue;
          const double value = static_cast<double>(sample[e]);
          if (robust_isolation(cell, value, config.outlier_mad_floor) >
              config.outlier_mad_threshold) {
            outlier = true;
            ++diag.outliers_quarantined;
            diag.quarantined[idx].push_back(value);
          }
        }
        if (outlier) {
          ++outlier_retries;
          continue;  // re-measure this slot
        }
      }

      for (hpc::HpcEvent e : hpc::all_events()) {
        const std::size_t idx = static_cast<std::size_t>(e);
        if (active[idx])
          result.samples[idx][c].push_back(static_cast<double>(sample[e]));
      }
      ++recorded[c];
      ++diag.measurements_recorded;
      return true;
    }
  };

  // Next slot under the configured schedule; nullopt when all cells are
  // full.  Interleaved mode picks the least-filled category (lowest index
  // on ties), which reproduces the classic round-robin order and resumes
  // correctly from any uneven checkpoint state.
  auto next_category = [&]() -> std::optional<std::size_t> {
    std::optional<std::size_t> best;
    for (std::size_t c = 0; c < ncat; ++c) {
      if (recorded[c] >= config.samples_per_category) continue;
      if (config.interleave_categories) {
        if (!best || recorded[c] < recorded[*best]) best = c;
      } else {
        return c;
      }
    }
    return best;
  };

  // Warm-up: bring the process (heap layout, lazy initialization) to a
  // steady state before the recorded acquisition starts.  Faults here
  // are irrelevant — the measurements are discarded anyway.
  for (std::size_t w = 0; w < config.warmup_measurements; ++w) {
    try {
      (void)raw_measure(w % ncat, 0);
    } catch (const TransientFailure&) {
    }
  }

  std::size_t recorded_this_run = 0;
  for (;;) {
    const std::optional<std::size_t> c = next_category();
    if (!c) {
      diag.complete = true;
      break;
    }
    if (config.stop_after_measurements > 0 &&
        recorded_this_run >= config.stop_after_measurements) {
      diag.complete = false;
      util::log_info("campaign: stopping early after ", recorded_this_run,
                     " measurements (stop_after_measurements)");
      break;
    }
    if (acquire_slot(*c)) {
      ++recorded_this_run;
      if (config.checkpoint_every > 0 &&
          diag.measurements_recorded % config.checkpoint_every == 0) {
        ++diag.checkpoints_written;
        save_checkpoint(config.checkpoint_path,
                        make_checkpoint(result, config));
      }
    } else {
      ++diag.failed_measurements;
      if (diag.failed_measurements >= config.max_failed_measurements)
        throw Error("run_campaign: " +
                    std::to_string(diag.failed_measurements) +
                    " measurement slots exhausted their retry budget; "
                    "giving up on this provider");
    }
  }

  if (!diag.dropped_events.empty() || !diag.unsupported_events.empty() ||
      diag.failed_measurements > 0)
    util::log_info("campaign: degraded acquisition — ", diag.summary());
  return result;
}

}  // namespace

CampaignResult run_campaign(const nn::Sequential& model,
                            const data::Dataset& dataset,
                            Instrument instrument,
                            const CampaignConfig& config) {
  if (config.categories.empty())
    throw InvalidArgument("run_campaign: no categories");
  if (config.samples_per_category == 0)
    throw InvalidArgument("run_campaign: samples_per_category must be > 0");

  CampaignResult result;
  result.categories = config.categories;
  for (int label : config.categories) {
    if (label < 0 ||
        static_cast<std::size_t>(label) >= dataset.num_classes())
      throw InvalidArgument("run_campaign: category label out of range");
    result.category_names.push_back(
        dataset.class_names()[static_cast<std::size_t>(label)]);
  }
  for (auto& per_event : result.samples)
    per_event.assign(config.categories.size(), {});

  return run_campaign_impl(model, dataset, instrument, config,
                           std::move(result));
}

CampaignResult run_campaign(const nn::Sequential& model,
                            const data::Dataset& dataset,
                            Instrument instrument,
                            const CampaignConfig& config,
                            CampaignResult partial) {
  if (partial.categories != config.categories)
    throw InvalidArgument(
        "run_campaign: resume state categories do not match config");
  for (const auto& per_event : partial.samples)
    if (per_event.size() != config.categories.size())
      throw InvalidArgument(
          "run_campaign: resume state has wrong category count");
  partial.diagnostics.resumed = true;
  partial.diagnostics.complete = false;
  return run_campaign_impl(model, dataset, instrument, config,
                           std::move(partial));
}

}  // namespace sce::core
