#include "stats/nonparametric.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.hpp"
#include "util/error.hpp"

namespace sce::stats {

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2)
    throw InvalidArgument("mann_whitney_u: need n >= 2 per sample");
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(a.size() + b.size());
  for (double x : a) all.push_back({x, true});
  for (double x : b) all.push_back({x, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& l, const Tagged& r) { return l.value < r.value; });

  // Midranks with tie bookkeeping for the variance correction.
  const double n = static_cast<double>(all.size());
  double rank_sum_a = 0.0;
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].value == all[i].value) ++j;
    const double tied = static_cast<double>(j - i);
    const double midrank =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k)
      if (all[k].from_a) rank_sum_a += midrank;
    if (tied > 1.0) tie_term += tied * (tied * tied - 1.0);
    i = j;
  }

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  MannWhitneyResult r;
  r.u = rank_sum_a - na * (na + 1.0) / 2.0;
  const double mean_u = na * nb / 2.0;
  const double var_u =
      na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values tied: no evidence either way.
    r.z = 0.0;
    r.p_two_sided = 1.0;
    return r;
  }
  // Continuity correction of 0.5 toward the mean.
  const double diff = r.u - mean_u;
  const double cc = (diff > 0.0) ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
  r.z = (diff + cc) / std::sqrt(var_u);
  r.p_two_sided = 2.0 * (1.0 - normal_cdf(std::fabs(r.z)));
  return r;
}

namespace {
// Asymptotic Kolmogorov distribution tail Q(lambda) = 2 sum (-1)^{k-1}
// exp(-2 k^2 lambda^2).
double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}
}  // namespace

KsResult kolmogorov_smirnov(std::span<const double> a,
                            std::span<const double> b) {
  if (a.empty() || b.empty())
    throw InvalidArgument("kolmogorov_smirnov: empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  KsResult r;
  r.d = d;
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  r.p_two_sided = kolmogorov_q(lambda);
  return r;
}

}  // namespace sce::stats
