// Two-sample location tests — the hypothesis-testing core of the paper's
// evaluator (Section 4): distributions of an HPC event for two input
// categories are compared with a t-test at 95% confidence; rejection of the
// null hypothesis means the categories are distinguishable and the
// implementation leaks.
#pragma once

#include <span>

#include "stats/descriptive.hpp"

namespace sce::stats {

struct TTestResult {
  double t = 0.0;            ///< test statistic
  double df = 0.0;           ///< degrees of freedom (fractional for Welch)
  double p_two_sided = 1.0;  ///< P(|T| >= |t|) under H0
  double mean_difference = 0.0;
  /// Cohen's d computed with the pooled standard deviation.
  double cohen_d = 0.0;

  /// True if H0 (equal means) is rejected at significance level alpha.
  bool significant(double alpha = 0.05) const { return p_two_sided < alpha; }
};

/// Welch's unequal-variance t-test (the variant appropriate for HPC counter
/// distributions, whose variances differ across categories).
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);
TTestResult welch_t_test(const Summary& a, const Summary& b);

/// Student's pooled-variance two-sample t-test.
TTestResult student_t_test(std::span<const double> a,
                           std::span<const double> b);

/// One-sample t-test of H0: mean == mu0.
TTestResult one_sample_t_test(std::span<const double> a, double mu0);

/// Confidence interval for the difference of means at level (1 - alpha),
/// using the Welch degrees of freedom.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval welch_confidence_interval(const Summary& a, const Summary& b,
                                   double alpha = 0.05);

}  // namespace sce::stats
