// One-way ANOVA: a global "does ANY category differ" screen that the
// evaluator runs before the pairwise t-test matrix (extension of the
// paper's methodology; controls the number of pairwise tests needed).
#pragma once

#include <vector>

namespace sce::stats {

struct AnovaResult {
  double f = 0.0;
  double df_between = 0.0;
  double df_within = 0.0;
  double p = 1.0;
  /// Effect size eta^2 = SS_between / SS_total.
  double eta_squared = 0.0;
  bool significant(double alpha = 0.05) const { return p < alpha; }
};

/// One-way fixed-effects ANOVA across k >= 2 groups, each with n >= 2.
AnovaResult one_way_anova(const std::vector<std::vector<double>>& groups);

}  // namespace sce::stats
