// Nonparametric two-sample tests.
//
// The paper uses only the t-test; these are provided as evaluator
// extensions because HPC counter distributions are frequently non-normal
// (multi-modal cache-miss counts), where rank tests are more robust.
#pragma once

#include <span>

namespace sce::stats {

struct MannWhitneyResult {
  double u = 0.0;            ///< U statistic of the first sample
  double z = 0.0;            ///< normal approximation z-score (tie-corrected)
  double p_two_sided = 1.0;  ///< two-sided p from the normal approximation
  bool significant(double alpha = 0.05) const { return p_two_sided < alpha; }
};

/// Mann–Whitney U (Wilcoxon rank-sum) test with the tie-corrected normal
/// approximation; suitable for the sample sizes used in campaigns (n >= 20).
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b);

struct KsResult {
  double d = 0.0;            ///< sup |F_a - F_b|
  double p_two_sided = 1.0;  ///< asymptotic Kolmogorov p-value
  bool significant(double alpha = 0.05) const { return p_two_sided < alpha; }
};

/// Two-sample Kolmogorov–Smirnov test with the asymptotic p-value.
KsResult kolmogorov_smirnov(std::span<const double> a,
                            std::span<const double> b);

}  // namespace sce::stats
