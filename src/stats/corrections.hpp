// Multiple-testing corrections.
//
// The evaluator runs (#events × #category-pairs) tests; at alpha = 0.05 a
// handful of false alarms are expected by chance.  The paper reports raw
// p-values; these corrections are offered so a deployment can control the
// family-wise error rate or FDR of the alarm set.
#pragma once

#include <span>
#include <vector>

namespace sce::stats {

/// Bonferroni: p_i' = min(1, m * p_i).
std::vector<double> bonferroni(std::span<const double> p_values);

/// Holm step-down adjusted p-values (FWER control, uniformly more powerful
/// than Bonferroni).
std::vector<double> holm(std::span<const double> p_values);

/// Benjamini–Hochberg adjusted p-values (FDR control).
std::vector<double> benjamini_hochberg(std::span<const double> p_values);

}  // namespace sce::stats
