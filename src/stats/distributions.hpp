// Cumulative distribution functions for hypothesis testing.
#pragma once

namespace sce::stats {

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Student-t CDF with `df` degrees of freedom (df may be fractional, as
/// produced by the Welch–Satterthwaite approximation).
double student_t_cdf(double t, double df);

/// Two-sided tail probability of |T| >= |t| under Student-t(df).
double student_t_two_sided_p(double t, double df);

/// F-distribution CDF with (df1, df2) degrees of freedom.
double f_cdf(double f, double df1, double df2);

/// Chi-square CDF with `df` degrees of freedom.
double chi_squared_cdf(double x, double df);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-12). Used for confidence intervals.
double normal_quantile(double p);

/// Inverse Student-t CDF via bisection on student_t_cdf.
double student_t_quantile(double p, double df);

}  // namespace sce::stats
