#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace sce::stats {

double log_gamma(double x) {
  if (!(x > 0.0)) throw InvalidArgument("log_gamma: x must be positive");
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps the approximation in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoef[0];
  for (int i = 1; i < 9; ++i) sum += kCoef[i] / (z + static_cast<double>(i));
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

// Continued fraction for the incomplete beta (Numerical Recipes form),
// evaluated with Lentz's method.
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEpsilon = 3.0e-15;
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < tiny) d = tiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < tiny) d = tiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0))
    throw InvalidArgument("incomplete_beta: a and b must be positive");
  if (x < 0.0 || x > 1.0)
    throw InvalidArgument("incomplete_beta: x must be in [0, 1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fast, the
  // symmetry relation elsewhere.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double incomplete_gamma_lower(double a, double x) {
  if (!(a > 0.0))
    throw InvalidArgument("incomplete_gamma_lower: a must be positive");
  if (x < 0.0)
    throw InvalidArgument("incomplete_gamma_lower: x must be non-negative");
  if (x == 0.0) return 0.0;

  if (x < a + 1.0) {
    // Series representation converges quickly here.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 3.0e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
  }
  return 1.0 - incomplete_gamma_upper(a, x);
}

double incomplete_gamma_upper(double a, double x) {
  if (!(a > 0.0))
    throw InvalidArgument("incomplete_gamma_upper: a must be positive");
  if (x < 0.0)
    throw InvalidArgument("incomplete_gamma_upper: x must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - incomplete_gamma_lower(a, x);

  // Lentz continued fraction for Q(a, x).
  constexpr double kEpsilon = 3.0e-15;
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

double error_function(double x) {
  if (x == 0.0) return 0.0;
  const double p = incomplete_gamma_lower(0.5, x * x);
  return x > 0.0 ? p : -p;
}

}  // namespace sce::stats
