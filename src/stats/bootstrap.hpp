// Nonparametric bootstrap inference.
//
// HPC counter distributions are skewed and multi-modal; the bootstrap
// gives confidence intervals for the mean difference between two
// categories without the normality assumption behind the t-interval.
#pragma once

#include <cstdint>
#include <span>

namespace sce::stats {

struct BootstrapConfig {
  std::size_t resamples = 2000;
  double alpha = 0.05;  ///< (1 - alpha) coverage
  std::uint64_t seed = 1729;
};

struct BootstrapInterval {
  double estimate = 0.0;  ///< point estimate (plug-in)
  double lo = 0.0;        ///< percentile interval bounds
  double hi = 0.0;

  /// The interval excludes zero — bootstrap evidence of a difference.
  bool excludes_zero() const { return hi < 0.0 || lo > 0.0; }
};

/// Percentile bootstrap CI for the mean of one sample.
BootstrapInterval bootstrap_mean(std::span<const double> xs,
                                 const BootstrapConfig& config = {});

/// Percentile bootstrap CI for mean(a) - mean(b) (independent samples).
BootstrapInterval bootstrap_mean_difference(
    std::span<const double> a, std::span<const double> b,
    const BootstrapConfig& config = {});

}  // namespace sce::stats
