#include "stats/distributions.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace sce::stats {

double normal_cdf(double x) {
  return 0.5 * (1.0 + error_function(x / std::sqrt(2.0)));
}

double student_t_cdf(double t, double df) {
  if (!(df > 0.0)) throw InvalidArgument("student_t_cdf: df must be positive");
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double df) {
  if (!(df > 0.0))
    throw InvalidArgument("student_t_two_sided_p: df must be positive");
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

double f_cdf(double f, double df1, double df2) {
  if (!(df1 > 0.0) || !(df2 > 0.0))
    throw InvalidArgument("f_cdf: degrees of freedom must be positive");
  if (f <= 0.0) return 0.0;
  const double x = df1 * f / (df1 * f + df2);
  return incomplete_beta(df1 / 2.0, df2 / 2.0, x);
}

double chi_squared_cdf(double x, double df) {
  if (!(df > 0.0))
    throw InvalidArgument("chi_squared_cdf: df must be positive");
  if (x <= 0.0) return 0.0;
  return incomplete_gamma_lower(df / 2.0, x / 2.0);
}

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0))
    throw InvalidArgument("normal_quantile: p must be in (0, 1)");
  // Acklam's rational approximation.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the self-contained CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double student_t_quantile(double p, double df) {
  if (!(p > 0.0) || !(p < 1.0))
    throw InvalidArgument("student_t_quantile: p must be in (0, 1)");
  if (!(df > 0.0))
    throw InvalidArgument("student_t_quantile: df must be positive");
  // Bracket then bisect; the CDF is monotone so this always converges.
  double lo = -1.0;
  double hi = 1.0;
  while (student_t_cdf(lo, df) > p) lo *= 2.0;
  while (student_t_cdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace sce::stats
