#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace sce::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo)) throw InvalidArgument("Histogram: hi must exceed lo");
  if (bins == 0) throw InvalidArgument("Histogram: need at least one bin");
}

std::size_t Histogram::bin_index(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  const std::size_t idx =
      static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bin_index(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size())
    throw InvalidArgument("Histogram::bin_center: bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t max_count = 0;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os << util::pad_left(util::fixed(bin_center(b), 1), 14) << "  "
       << util::pad_left(std::to_string(counts_[b]), 6) << "  "
       << util::bar(static_cast<double>(counts_[b]),
                    static_cast<double>(max_count), bar_width)
       << '\n';
  }
  return os.str();
}

std::size_t sturges_bins(std::size_t n) {
  if (n == 0) return 1;
  return static_cast<std::size_t>(
             std::ceil(std::log2(static_cast<double>(n)))) +
         1;
}

std::size_t freedman_diaconis_bins(std::span<const double> xs) {
  if (xs.size() < 2) return 1;
  const double iqr = quantile(xs, 0.75) - quantile(xs, 0.25);
  if (iqr <= 0.0) return sturges_bins(xs.size());
  const double width =
      2.0 * iqr / std::cbrt(static_cast<double>(xs.size()));
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  if (*mx <= *mn) return 1;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil((*mx - *mn) / width)));
}

std::vector<Histogram> shared_histograms(
    const std::vector<std::vector<double>>& samples, std::size_t bins) {
  if (samples.empty())
    throw InvalidArgument("shared_histograms: no samples");
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const auto& s : samples) {
    for (double x : s) {
      if (first) {
        lo = hi = x;
        first = false;
      } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
    }
  }
  if (first) throw InvalidArgument("shared_histograms: all samples empty");
  if (hi <= lo) hi = lo + 1.0;  // degenerate range: single shared bin span
  std::vector<Histogram> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    Histogram h(lo, hi, bins);
    h.add_all(s);
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace sce::stats
