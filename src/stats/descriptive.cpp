#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sce::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - m1_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  m1_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.m1_ - m1_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  RunningStats merged;
  merged.n_ = n_ + other.n_;
  merged.m1_ = m1_ + delta * nb / n;
  merged.m2_ = m2_ + other.m2_ + delta2 * na * nb / n;
  merged.m3_ = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
               3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  merged.m4_ = m4_ + other.m4_ +
               delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
               6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
               4.0 * delta * (na * other.m3_ - nb * m3_) / n;
  merged.min_ = std::min(min_, other.min_);
  merged.max_ = std::max(max_, other.max_);
  *this = merged;
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const {
  if (n_ == 0) throw InvalidArgument("RunningStats::mean: empty sample");
  return m1_;
}

double RunningStats::variance() const {
  if (n_ < 2) throw InvalidArgument("RunningStats::variance: need >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const {
  if (n_ == 0) throw InvalidArgument("RunningStats::min: empty sample");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw InvalidArgument("RunningStats::max: empty sample");
  return max_;
}

double RunningStats::skewness() const {
  if (n_ < 2) throw InvalidArgument("RunningStats::skewness: need >= 2");
  if (m2_ == 0.0) throw InvalidArgument("RunningStats::skewness: zero var");
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::excess_kurtosis() const {
  if (n_ < 2) throw InvalidArgument("RunningStats::excess_kurtosis: need >=2");
  if (m2_ == 0.0)
    throw InvalidArgument("RunningStats::excess_kurtosis: zero var");
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw InvalidArgument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw InvalidArgument("quantile: q not in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> xs) {
  if (xs.empty()) throw InvalidArgument("summarize: empty sample");
  RunningStats rs;
  for (double x : xs) rs.add(x);
  Summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  if (s.count >= 2) {
    s.variance = rs.variance();
    s.stddev = rs.stddev();
    s.sem = rs.sem();
  }
  s.min = rs.min();
  s.max = rs.max();
  s.median = quantile(xs, 0.5);
  s.q1 = quantile(xs, 0.25);
  s.q3 = quantile(xs, 0.75);
  return s;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw InvalidArgument("pearson_correlation: length mismatch");
  if (xs.size() < 2) throw InvalidArgument("pearson_correlation: need >= 2");
  const std::size_t n = xs.size();
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0)
    throw InvalidArgument("pearson_correlation: zero-variance sample");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace sce::stats
