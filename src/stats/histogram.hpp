// Fixed-bin histograms used to render the distribution figures (Fig. 3/4).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sce::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside the range are clamped to
  /// the first/last bin so every sample is accounted for.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Center of bin `bin`.
  double bin_center(std::size_t bin) const;
  double bin_width() const;
  /// Normalized height (count / total); 0 if the histogram is empty.
  double density(std::size_t bin) const;
  /// Index of the bin a value falls into (after clamping).
  std::size_t bin_index(double x) const;

  /// Render as rows of "center count bar" suitable for terminal output.
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Number of bins suggested by Sturges' rule for a sample of size n.
std::size_t sturges_bins(std::size_t n);

/// Number of bins suggested by the Freedman–Diaconis rule; falls back to
/// Sturges when the IQR is degenerate.
std::size_t freedman_diaconis_bins(std::span<const double> xs);

/// Build a histogram spanning the combined range of several samples with a
/// shared binning — this is how the per-category distribution figures are
/// produced (all categories share one x-axis).
std::vector<Histogram> shared_histograms(
    const std::vector<std::vector<double>>& samples, std::size_t bins);

}  // namespace sce::stats
