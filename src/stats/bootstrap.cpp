#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sce::stats {

namespace {

void validate(const BootstrapConfig& config) {
  if (config.resamples < 10)
    throw InvalidArgument("bootstrap: need at least 10 resamples");
  if (!(config.alpha > 0.0) || !(config.alpha < 1.0))
    throw InvalidArgument("bootstrap: alpha must be in (0, 1)");
}

double resample_mean(std::span<const double> xs, util::Rng& rng) {
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    sum += xs[static_cast<std::size_t>(rng.below(xs.size()))];
  return sum / static_cast<double>(xs.size());
}

BootstrapInterval interval_from(std::vector<double>& statistics,
                                double estimate, double alpha) {
  std::sort(statistics.begin(), statistics.end());
  BootstrapInterval out;
  out.estimate = estimate;
  out.lo = quantile(statistics, alpha / 2.0);
  out.hi = quantile(statistics, 1.0 - alpha / 2.0);
  return out;
}

}  // namespace

BootstrapInterval bootstrap_mean(std::span<const double> xs,
                                 const BootstrapConfig& config) {
  validate(config);
  if (xs.empty()) throw InvalidArgument("bootstrap_mean: empty sample");
  util::Rng rng(config.seed);
  std::vector<double> statistics;
  statistics.reserve(config.resamples);
  for (std::size_t r = 0; r < config.resamples; ++r)
    statistics.push_back(resample_mean(xs, rng));
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  return interval_from(statistics, mean, config.alpha);
}

BootstrapInterval bootstrap_mean_difference(std::span<const double> a,
                                            std::span<const double> b,
                                            const BootstrapConfig& config) {
  validate(config);
  if (a.empty() || b.empty())
    throw InvalidArgument("bootstrap_mean_difference: empty sample");
  util::Rng rng(config.seed);
  std::vector<double> statistics;
  statistics.reserve(config.resamples);
  for (std::size_t r = 0; r < config.resamples; ++r)
    statistics.push_back(resample_mean(a, rng) - resample_mean(b, rng));
  double mean_a = 0.0;
  for (double x : a) mean_a += x;
  double mean_b = 0.0;
  for (double x : b) mean_b += x;
  return interval_from(statistics,
                       mean_a / static_cast<double>(a.size()) -
                           mean_b / static_cast<double>(b.size()),
                       config.alpha);
}

}  // namespace sce::stats
