// Descriptive statistics: single-pass accumulation (Welford) and summaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sce::stats {

/// Numerically stable streaming accumulator for mean/variance/skew/kurtosis
/// (Welford / Pébay update formulas).  The campaign driver feeds counter
/// samples into one of these per (event, category) cell.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void clear();

  std::uint64_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Requires count() >= 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const;
  double max() const;
  /// Sample skewness (g1). Requires count() >= 2 and nonzero variance.
  double skewness() const;
  /// Excess kurtosis (g2). Requires count() >= 2 and nonzero variance.
  double excess_kurtosis() const;

 private:
  std::uint64_t n_ = 0;
  double m1_ = 0.0;  // mean
  double m2_ = 0.0;  // sum of squared deviations
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Full summary of a sample, computed in one call.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double sem = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;  // 25th percentile
  double q3 = 0.0;  // 75th percentile
};

Summary summarize(std::span<const double> xs);

/// Linear-interpolation quantile (type-7, the numpy/R default) of a sorted
/// copy of xs; q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Sample Pearson correlation of two equal-length samples.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

}  // namespace sce::stats
