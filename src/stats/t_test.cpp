#include "stats/t_test.hpp"

#include <cmath>

#include "stats/distributions.hpp"
#include "util/error.hpp"

namespace sce::stats {

namespace {
void require_two_plus(const Summary& s, const char* who) {
  if (s.count < 2) throw InvalidArgument(std::string(who) + ": need n >= 2");
}

double pooled_cohen_d(const Summary& a, const Summary& b) {
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  const double pooled_var =
      ((na - 1.0) * a.variance + (nb - 1.0) * b.variance) / (na + nb - 2.0);
  if (pooled_var <= 0.0) return 0.0;
  return (a.mean - b.mean) / std::sqrt(pooled_var);
}
}  // namespace

TTestResult welch_t_test(const Summary& a, const Summary& b) {
  require_two_plus(a, "welch_t_test");
  require_two_plus(b, "welch_t_test");
  const double va_n = a.variance / static_cast<double>(a.count);
  const double vb_n = b.variance / static_cast<double>(b.count);
  const double se2 = va_n + vb_n;
  TTestResult r;
  r.mean_difference = a.mean - b.mean;
  r.cohen_d = pooled_cohen_d(a, b);
  if (se2 == 0.0) {
    // Both samples are exactly constant.  Equal constants -> no evidence of
    // difference; different constants -> infinitely strong evidence.
    r.t = (r.mean_difference == 0.0)
              ? 0.0
              : std::copysign(INFINITY, r.mean_difference);
    r.df = static_cast<double>(a.count + b.count - 2);
    r.p_two_sided = (r.mean_difference == 0.0) ? 1.0 : 0.0;
    return r;
  }
  r.t = r.mean_difference / std::sqrt(se2);
  // Welch–Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = va_n * va_n / (static_cast<double>(a.count) - 1.0) +
                     vb_n * vb_n / (static_cast<double>(b.count) - 1.0);
  r.df = num / den;
  r.p_two_sided = student_t_two_sided_p(r.t, r.df);
  return r;
}

TTestResult welch_t_test(std::span<const double> a,
                         std::span<const double> b) {
  return welch_t_test(summarize(a), summarize(b));
}

TTestResult student_t_test(std::span<const double> a,
                           std::span<const double> b) {
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  require_two_plus(sa, "student_t_test");
  require_two_plus(sb, "student_t_test");
  const double na = static_cast<double>(sa.count);
  const double nb = static_cast<double>(sb.count);
  const double pooled_var =
      ((na - 1.0) * sa.variance + (nb - 1.0) * sb.variance) / (na + nb - 2.0);
  TTestResult r;
  r.mean_difference = sa.mean - sb.mean;
  r.cohen_d = pooled_cohen_d(sa, sb);
  r.df = na + nb - 2.0;
  if (pooled_var == 0.0) {
    r.t = (r.mean_difference == 0.0)
              ? 0.0
              : std::copysign(INFINITY, r.mean_difference);
    r.p_two_sided = (r.mean_difference == 0.0) ? 1.0 : 0.0;
    return r;
  }
  r.t = r.mean_difference / std::sqrt(pooled_var * (1.0 / na + 1.0 / nb));
  r.p_two_sided = student_t_two_sided_p(r.t, r.df);
  return r;
}

TTestResult one_sample_t_test(std::span<const double> a, double mu0) {
  const Summary s = summarize(a);
  require_two_plus(s, "one_sample_t_test");
  TTestResult r;
  r.mean_difference = s.mean - mu0;
  r.df = static_cast<double>(s.count) - 1.0;
  if (s.variance == 0.0) {
    r.t = (r.mean_difference == 0.0)
              ? 0.0
              : std::copysign(INFINITY, r.mean_difference);
    r.p_two_sided = (r.mean_difference == 0.0) ? 1.0 : 0.0;
    r.cohen_d = 0.0;
    return r;
  }
  r.t = r.mean_difference / s.sem;
  r.cohen_d = r.mean_difference / s.stddev;
  r.p_two_sided = student_t_two_sided_p(r.t, r.df);
  return r;
}

Interval welch_confidence_interval(const Summary& a, const Summary& b,
                                   double alpha) {
  require_two_plus(a, "welch_confidence_interval");
  require_two_plus(b, "welch_confidence_interval");
  if (!(alpha > 0.0) || !(alpha < 1.0))
    throw InvalidArgument("welch_confidence_interval: alpha must be in (0,1)");
  const TTestResult r = welch_t_test(a, b);
  const double se = std::sqrt(a.variance / static_cast<double>(a.count) +
                              b.variance / static_cast<double>(b.count));
  if (se == 0.0) return {r.mean_difference, r.mean_difference};
  const double tcrit = student_t_quantile(1.0 - alpha / 2.0, r.df);
  return {r.mean_difference - tcrit * se, r.mean_difference + tcrit * se};
}

}  // namespace sce::stats
