#include "stats/anova.hpp"

#include <cmath>

#include "stats/distributions.hpp"
#include "util/error.hpp"

namespace sce::stats {

AnovaResult one_way_anova(const std::vector<std::vector<double>>& groups) {
  if (groups.size() < 2)
    throw InvalidArgument("one_way_anova: need at least two groups");
  std::size_t total_n = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    if (g.size() < 2)
      throw InvalidArgument("one_way_anova: each group needs n >= 2");
    total_n += g.size();
    for (double x : g) grand_sum += x;
  }
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto& g : groups) {
    double mean = 0.0;
    for (double x : g) mean += x;
    mean /= static_cast<double>(g.size());
    ss_between += static_cast<double>(g.size()) * (mean - grand_mean) *
                  (mean - grand_mean);
    for (double x : g) ss_within += (x - mean) * (x - mean);
  }

  AnovaResult r;
  r.df_between = static_cast<double>(groups.size()) - 1.0;
  r.df_within = static_cast<double>(total_n - groups.size());
  const double ss_total = ss_between + ss_within;
  r.eta_squared = (ss_total > 0.0) ? ss_between / ss_total : 0.0;
  if (ss_within == 0.0) {
    r.f = (ss_between == 0.0) ? 0.0 : INFINITY;
    r.p = (ss_between == 0.0) ? 1.0 : 0.0;
    return r;
  }
  const double ms_between = ss_between / r.df_between;
  const double ms_within = ss_within / r.df_within;
  r.f = ms_between / ms_within;
  r.p = 1.0 - f_cdf(r.f, r.df_between, r.df_within);
  return r;
}

}  // namespace sce::stats
