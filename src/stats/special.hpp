// Special functions needed for exact p-values.
//
// The Student-t, F and binomial tail probabilities all reduce to the
// regularized incomplete beta function I_x(a, b); the chi-square tail
// reduces to the regularized incomplete gamma.  Both are implemented from
// first principles (Lentz's modified continued fraction and a Taylor
// series / continued-fraction pair) so the library has no dependency on a
// scientific package and the accuracy is under our own test suite.
#pragma once

namespace sce::stats {

/// log Gamma(x) for x > 0 (Lanczos approximation, |error| < 2e-10).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0.
double incomplete_gamma_lower(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double incomplete_gamma_upper(double a, double x);

/// Error function via the incomplete gamma (matches std::erf to ~1e-12,
/// kept so the whole p-value chain is self-contained and testable).
double error_function(double x);

}  // namespace sce::stats
