#include "stats/corrections.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace sce::stats {

namespace {
void check_ps(std::span<const double> p_values) {
  for (double p : p_values)
    if (p < 0.0 || p > 1.0)
      throw InvalidArgument("multiple-testing correction: p not in [0, 1]");
}

std::vector<std::size_t> order_by_p(std::span<const double> p_values) {
  std::vector<std::size_t> order(p_values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });
  return order;
}
}  // namespace

std::vector<double> bonferroni(std::span<const double> p_values) {
  check_ps(p_values);
  const double m = static_cast<double>(p_values.size());
  std::vector<double> out;
  out.reserve(p_values.size());
  for (double p : p_values) out.push_back(std::min(1.0, m * p));
  return out;
}

std::vector<double> holm(std::span<const double> p_values) {
  check_ps(p_values);
  const std::size_t m = p_values.size();
  const auto order = order_by_p(p_values);
  std::vector<double> out(m, 0.0);
  double running_max = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double adj =
        std::min(1.0, static_cast<double>(m - k) * p_values[order[k]]);
    running_max = std::max(running_max, adj);
    out[order[k]] = running_max;
  }
  return out;
}

std::vector<double> benjamini_hochberg(std::span<const double> p_values) {
  check_ps(p_values);
  const std::size_t m = p_values.size();
  const auto order = order_by_p(p_values);
  std::vector<double> out(m, 0.0);
  double running_min = 1.0;
  for (std::size_t k = m; k-- > 0;) {
    const double adj = std::min(
        1.0, static_cast<double>(m) / static_cast<double>(k + 1) *
                 p_values[order[k]]);
    running_min = std::min(running_min, adj);
    out[order[k]] = running_min;
  }
  return out;
}

}  // namespace sce::stats
