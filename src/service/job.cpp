#include "service/job.hpp"

#include <utility>

#include "data/synthetic.hpp"
#include "util/digest.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace sce::service {

namespace {

nn::KernelMode parse_kernel_mode(const std::string& name) {
  if (name == "data-dependent") return nn::KernelMode::kDataDependent;
  if (name == "constant-flow") return nn::KernelMode::kConstantFlow;
  throw InvalidArgument("job: unknown kernel mode '" + name + "'");
}

bool is_image_kind(const std::string& kind) {
  return kind == "mnist-like" || kind == "cifar-like";
}

/// Config fields that affect the evaluation's result, in one fixed key
/// order.  Scheduling fields (priority, deadline) and pure execution
/// knobs (num_threads) never appear here: they cannot change a completed
/// report's bytes, so they must not split the cache.
void write_digest_fields(util::JsonWriter& w, const JobConfig& c) {
  w.key("dataset").begin_object();
  w.key("kind").value(c.dataset.kind);
  w.key("seed").value(static_cast<std::uint64_t>(c.dataset.seed));
  w.key("examples_per_class")
      .value(static_cast<std::uint64_t>(c.dataset.examples_per_class));
  w.key("num_classes").value(static_cast<std::uint64_t>(c.dataset.num_classes));
  w.key("crop").value(static_cast<std::uint64_t>(c.dataset.crop));
  w.end_object();
  w.key("categories").begin_array();
  for (int cat : c.categories) w.value(static_cast<std::int64_t>(cat));
  w.end_array();
  w.key("samples_per_category")
      .value(static_cast<std::uint64_t>(c.samples_per_category));
  w.key("kernel_mode").value(nn::to_string(c.kernel_mode));
  w.key("num_shards").value(static_cast<std::uint64_t>(c.num_shards));
  w.key("warmup_measurements")
      .value(static_cast<std::uint64_t>(c.warmup_measurements));
  w.key("interleave_categories").value(c.interleave_categories);
  w.key("alpha").value_exact(c.alpha);
}

}  // namespace

std::string to_string(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "normal";
}

Priority parse_priority(const std::string& name) {
  if (name == "low") return Priority::kLow;
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  throw InvalidArgument("job: unknown priority '" + name + "'");
}

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPreempted:
      return "preempted";
    case JobState::kCompleted:
      return "completed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
    case JobState::kRejected:
      return "rejected";
  }
  return "queued";
}

bool is_terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kCancelled ||
         state == JobState::kFailed || state == JobState::kRejected;
}

void JobConfig::validate() const {
  if (dataset.kind != "mnist-like" && dataset.kind != "cifar-like" &&
      dataset.kind != "sequence-like")
    throw ValidationError(
        "job", "dataset.kind",
        "must be mnist-like, cifar-like or sequence-like (got '" +
            dataset.kind + "')");
  if (dataset.examples_per_class == 0)
    throw ValidationError("job", "dataset.examples_per_class", "must be > 0");
  if (dataset.num_classes == 0)
    throw ValidationError("job", "dataset.num_classes", "must be > 0");
  const std::size_t max_classes =
      dataset.kind == "sequence-like" ? std::size_t{4} : std::size_t{10};
  if (dataset.num_classes > max_classes)
    throw ValidationError("job", "dataset.num_classes",
                          "must be <= " + std::to_string(max_classes) +
                              " for " + dataset.kind + " data");
  if (dataset.crop != 0) {
    if (!is_image_kind(dataset.kind))
      throw ValidationError("job", "dataset.crop",
                            "only applies to image datasets");
    const std::size_t full = dataset.kind == "mnist-like" ? 28 : 32;
    if (dataset.crop < 4 || dataset.crop > full)
      throw ValidationError(
          "job", "dataset.crop",
          "must be in [4, " + std::to_string(full) + "] for " + dataset.kind);
  }
  for (int cat : categories) {
    if (cat < 0 || static_cast<std::size_t>(cat) >= dataset.num_classes)
      throw ValidationError("job", "categories",
                            "contains label " + std::to_string(cat) +
                                " outside [0, " +
                                std::to_string(dataset.num_classes) + ")");
  }
  if (!(alpha > 0.0) || !(alpha < 1.0))
    throw ValidationError("job", "alpha", "must be in (0, 1)");
  if (deadline < std::chrono::milliseconds::zero())
    throw ValidationError("job", "deadline", "must be >= 0");
  // The campaign-level invariants (categories non-empty, sample budget,
  // shard count, ...) are enforced by the same validator the campaign
  // itself runs, so admission and execution can never disagree.
  to_campaign_config(*this).validate();
}

std::string canonical_config_json(const JobConfig& config) {
  util::JsonWriter w;
  w.begin_object();
  write_digest_fields(w, config);
  w.end_object();
  return w.str();
}

std::string config_digest(const JobConfig& config) {
  return util::content_digest_hex(canonical_config_json(config));
}

data::Dataset make_dataset(const DatasetSpec& spec) {
  if (spec.kind == "sequence-like") {
    data::SequenceConfig cfg;
    cfg.seed = spec.seed;
    cfg.examples_per_class = spec.examples_per_class;
    cfg.num_classes = spec.num_classes;
    return data::make_sequence_like(cfg);
  }

  data::SyntheticConfig cfg;
  cfg.seed = spec.seed;
  cfg.examples_per_class = spec.examples_per_class;
  cfg.num_classes = spec.num_classes;
  const data::Dataset full = spec.kind == "mnist-like"
                                 ? data::make_mnist_like(cfg)
                                 : data::make_cifar_like(cfg);
  if (spec.crop == 0) return full;

  // Center crop, matching the offset convention of the test fixtures
  // (28x28 -> 12x12 crops at offset 8).
  data::Dataset cropped({}, full.class_names());
  for (std::size_t i = 0; i < full.size(); ++i) {
    const data::Image& src = full[i].image;
    const std::size_t off_y = (src.height() - spec.crop) / 2;
    const std::size_t off_x = (src.width() - spec.crop) / 2;
    data::Example e;
    e.label = full[i].label;
    e.image = data::Image(src.channels(), spec.crop, spec.crop);
    for (std::size_t c = 0; c < src.channels(); ++c)
      for (std::size_t y = 0; y < spec.crop; ++y)
        for (std::size_t x = 0; x < spec.crop; ++x)
          e.image.at(c, y, x) = src.at(c, y + off_y, x + off_x);
    cropped.add(std::move(e));
  }
  return cropped;
}

std::vector<std::size_t> dataset_input_shape(const DatasetSpec& spec) {
  if (spec.kind == "sequence-like") return {1, 16, 8};
  const std::size_t channels = spec.kind == "mnist-like" ? 1 : 3;
  const std::size_t full = spec.kind == "mnist-like" ? 28 : 32;
  const std::size_t side = spec.crop == 0 ? full : spec.crop;
  return {channels, side, side};
}

core::CampaignConfig to_campaign_config(const JobConfig& config) {
  core::CampaignConfig cc;
  cc.categories = config.categories;
  cc.samples_per_category = config.samples_per_category;
  cc.kernel_mode = config.kernel_mode;
  cc.interleave_categories = config.interleave_categories;
  cc.warmup_measurements = config.warmup_measurements;
  cc.num_shards = config.num_shards;
  cc.num_threads = config.num_threads;
  return cc;
}

std::string job_config_to_json(const JobConfig& config) {
  util::JsonWriter w;
  w.begin_object();
  write_digest_fields(w, config);
  w.key("num_threads").value(static_cast<std::uint64_t>(config.num_threads));
  w.key("priority").value(to_string(config.priority));
  w.key("deadline_ms")
      .value(static_cast<std::int64_t>(config.deadline.count()));
  w.end_object();
  return w.str();
}

JobConfig job_config_from_json(const std::string& json) {
  return job_config_from_value(util::parse_json(json));
}

JobConfig job_config_from_value(const util::JsonValue& doc) {
  JobConfig c;
  c.categories.clear();
  for (const auto& [key, value] : doc.members()) {
    if (key == "dataset") {
      for (const auto& [dkey, dvalue] : value.members()) {
        if (dkey == "kind")
          c.dataset.kind = dvalue.as_string();
        else if (dkey == "seed")
          c.dataset.seed = static_cast<std::uint64_t>(dvalue.as_int());
        else if (dkey == "examples_per_class")
          c.dataset.examples_per_class =
              static_cast<std::size_t>(dvalue.as_int());
        else if (dkey == "num_classes")
          c.dataset.num_classes = static_cast<std::size_t>(dvalue.as_int());
        else if (dkey == "crop")
          c.dataset.crop = static_cast<std::size_t>(dvalue.as_int());
        else
          throw InvalidArgument("job config: unknown dataset key '" + dkey +
                                "'");
      }
    } else if (key == "categories") {
      for (const auto& item : value.items())
        c.categories.push_back(static_cast<int>(item.as_int()));
    } else if (key == "samples_per_category") {
      c.samples_per_category = static_cast<std::size_t>(value.as_int());
    } else if (key == "kernel_mode") {
      c.kernel_mode = parse_kernel_mode(value.as_string());
    } else if (key == "num_shards") {
      c.num_shards = static_cast<std::size_t>(value.as_int());
    } else if (key == "num_threads") {
      c.num_threads = static_cast<std::size_t>(value.as_int());
    } else if (key == "warmup_measurements") {
      c.warmup_measurements = static_cast<std::size_t>(value.as_int());
    } else if (key == "interleave_categories") {
      c.interleave_categories = value.as_bool();
    } else if (key == "alpha") {
      c.alpha = value.as_number();
    } else if (key == "priority") {
      c.priority = parse_priority(value.as_string());
    } else if (key == "deadline_ms") {
      c.deadline = std::chrono::milliseconds(value.as_int());
    } else {
      throw InvalidArgument("job config: unknown key '" + key + "'");
    }
  }
  return c;
}

}  // namespace sce::service
