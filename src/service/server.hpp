// EvaluationServer: the multi-tenant leakage-evaluation service core.
//
// Wraps the Campaign API in a long-running scheduler:
//
//   submit(model, config)
//     └─ admission: JobConfig::validate() (structured ValidationError
//        relay) + the static lint gate (analysis::lint — the same
//        library call behind tools/leakage_lint)
//     └─ result cache: keyed by (nn::model_digest, config_digest); a hit
//        returns the cached report byte-identically, executing zero
//        campaign measurements
//     └─ priority queue: jobs wait in (priority desc, arrival asc)
//        order and execute as campaign "legs" on the shared
//        util::ThreadPool (one long-running executor loop per worker)
//
// Preemption is cooperative and checkpoint-backed: when a submission
// outranks the lowest-priority running job and no executor is free, the
// victim's leg CancelToken is tripped; the campaign flushes a durable
// CRC-framed checkpoint (PR 7 machinery) and returns Partial, the job
// re-enters the queue as kPreempted, and a later leg resumes it with
// Campaign::resume — bit-identical to an uncontended run at any thread
// count.  User cancels and server shutdown ride the same token
// hierarchy (server token ⊃ job token ⊃ leg token), so tripping any
// level stops exactly the intended scope.
//
// The server is transport-agnostic; socket.hpp adds the wire front end.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "hpc/instrument_factory.hpp"
#include "nn/model.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace sce::service {

struct ServerConfig {
  /// Executor slots = workers on the shared ThreadPool = campaigns that
  /// may run concurrently.
  std::size_t executors = 2;
  /// Directory for durable job checkpoints (created on demand).  Names
  /// derive from the same digest pair that keys the result cache:
  /// <model8>-<config8>-job<id>.ckpt.
  std::string work_dir = ".sce_service";
  std::size_t cache_capacity = 64;

  // --- Admission gate ---------------------------------------------------
  /// Reject models whose lint verdict reaches this level (nullopt = no
  /// verdict gate — the service's default job is *measuring* leaky
  /// models, so only opt-in deployments turn this on).
  std::optional<analysis::Verdict> admit_fail_on;
  /// Reject models with layers the analyzer cannot reason about — an
  /// undeclared contract means no leakage claim can be made either way.
  bool admit_fail_on_undeclared = true;
  /// Also cross-validate contracts against the trace oracle at
  /// admission (slow; off by default).
  bool admit_cross_check = false;

  /// Mints the per-job instrument factory; called once per executed leg
  /// so every leg gets fresh rigs.  Default: SimulatedPmuFactory.
  std::function<std::unique_ptr<hpc::InstrumentFactory>()> instruments;

  /// Campaign progress granularity in recorded measurements (also the
  /// preemption latency bound: legs poll their token at chunk barriers
  /// and between measurement attempts).
  std::size_t progress_every = 1;
};

struct ServerStats {
  std::size_t submissions = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  /// Jobs answered straight from the result cache.
  std::size_t cache_completions = 0;
  /// Evictions performed for priority pressure (checkpoint flushes).
  std::size_t preemptions = 0;
  /// Campaign measurements actually executed across all jobs.
  std::size_t measurements_executed = 0;
};

class EvaluationServer {
 public:
  explicit EvaluationServer(ServerConfig config = {});
  /// Shuts down: cancels queued and running jobs, drains executors.
  ~EvaluationServer();

  EvaluationServer(const EvaluationServer&) = delete;
  EvaluationServer& operator=(const EvaluationServer&) = delete;

  /// Admit (or reject) a job.  Never throws for tenant mistakes — a
  /// validation or lint failure yields a job in kRejected state whose
  /// status carries the structured cause; a cache hit yields a job
  /// already in kCompleted state with from_cache set.  Returns the job
  /// id in every case.  Throws Error only for server-side faults
  /// (shutdown in progress).
  std::uint64_t submit(nn::Sequential model, JobConfig config);

  /// Snapshot a job's state; throws InvalidArgument for unknown ids.
  JobStatus status(std::uint64_t id) const;

  /// Block until the job reaches a terminal state.
  JobStatus wait(std::uint64_t id);

  /// Block until progress_seq exceeds `last_seq` or the job is terminal
  /// — the long-poll primitive behind the stream-progress verb.
  JobStatus wait_progress(std::uint64_t id, std::uint64_t last_seq);

  /// Cooperatively cancel a job.  Returns false if it was already
  /// terminal.  A queued job cancels immediately; a running one stops at
  /// its next safe point (flushing a checkpoint it never needs again).
  bool cancel(std::uint64_t id, const std::string& why = "client cancel");

  /// The final report document of a completed job (byte-identical across
  /// cache hits of the same (model, config) pair).  Throws
  /// InvalidArgument unless state == kCompleted.
  std::string report(std::uint64_t id) const;

  CacheStats cache_stats() const { return cache_.stats(); }
  ServerStats stats() const;

  /// Stop accepting work, cancel everything in flight, join executors.
  /// Idempotent; also run by the destructor.
  void shutdown();

  const ServerConfig& config() const { return config_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    std::uint64_t seq = 0;  ///< arrival order, ties in the ready queue
    JobState state = JobState::kQueued;
    JobConfig config;
    nn::Sequential model;
    data::Dataset dataset;
    std::string model_digest;
    std::string config_digest;
    std::string checkpoint_path;
    bool has_checkpoint = false;
    bool from_cache = false;
    bool preempt_requested = false;
    util::CancelToken job_token;  ///< child of the server token
    util::CancelToken leg_token;  ///< child of job_token, fresh per leg
    std::size_t measurements_recorded = 0;
    std::size_t measurements_target = 0;
    std::size_t measurements_executed = 0;
    std::size_t preemptions = 0;
    std::size_t legs = 0;
    std::uint64_t progress_seq = 0;
    std::string report_json;
    std::string error;
    std::string reject_domain;
    std::string reject_field;
    std::string reject_constraint;
  };

  /// Ready-queue order: highest priority first, then earliest arrival.
  struct ReadyOrder {
    bool operator()(const Job* a, const Job* b) const {
      if (a->config.priority != b->config.priority)
        return a->config.priority > b->config.priority;
      return a->seq < b->seq;
    }
  };

  void executor_loop();
  /// Runs one leg of `job` without holding the mutex; returns to
  /// finish_leg_locked with the outcome.
  void run_leg(Job& job);
  void finish_leg_locked(Job& job, core::CampaignResult result,
                         std::unique_lock<std::mutex>& lock);
  void fail_job_locked(Job& job, const std::string& why);
  /// Evict the lowest-priority running job if the best ready job
  /// outranks it and every executor is busy.
  void maybe_preempt_locked();
  void bump_locked(Job& job) {
    ++job.progress_seq;
    state_changed_.notify_all();
  }
  JobStatus snapshot_locked(const Job& job) const;
  Job& find_locked(std::uint64_t id);
  const Job& find_locked(std::uint64_t id) const;

  ServerConfig config_;
  ResultCache cache_;
  util::CancelToken server_token_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;     ///< executors sleep here
  std::condition_variable state_changed_;  ///< wait()/wait_progress()
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::set<Job*, ReadyOrder> ready_;
  std::set<Job*> running_;
  ServerStats stats_;

  /// The shared executor pool; every campaign leg of every tenant runs
  /// on one of its workers.  Created last, destroyed first.
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Compose the final report document.  Deterministic: depends only on
/// the digests, the kernel mode and the assessment content, so two runs
/// that produced bit-identical campaign samples render bit-identical
/// reports (what the cache's byte-identity promise rests on).
std::string make_report_json(const std::string& model_digest,
                             const std::string& config_digest,
                             const JobConfig& config,
                             const core::CampaignResult& campaign);

}  // namespace sce::service
