#include "service/server.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "analysis/symexec/verifier.hpp"
#include "core/checkpoint.hpp"
#include "core/evaluator.hpp"
#include "core/report.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace sce::service {

EvaluationServer::EvaluationServer(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity == 0 ? 1 : config_.cache_capacity) {
  if (config_.executors == 0) config_.executors = 1;
  if (config_.progress_every == 0) config_.progress_every = 1;
  if (!config_.instruments)
    config_.instruments = [] {
      return std::make_unique<hpc::SimulatedPmuFactory>();
    };
  std::filesystem::create_directories(config_.work_dir);
  pool_ = std::make_unique<util::ThreadPool>(config_.executors);
  // One persistent executor loop per worker: every campaign leg of every
  // tenant executes on this one shared pool.
  for (std::size_t i = 0; i < config_.executors; ++i)
    pool_->submit([this] { executor_loop(); });
}

EvaluationServer::~EvaluationServer() { shutdown(); }

std::uint64_t EvaluationServer::submit(nn::Sequential model,
                                       JobConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw Error("service: server is shutting down");
  }

  auto job = std::make_unique<Job>();
  job->config = std::move(config);
  job->model = std::move(model);

  // Terminal-at-submit path shared by rejections and cache hits.
  auto finalize = [this](std::unique_ptr<Job> done) -> std::uint64_t {
    std::lock_guard<std::mutex> lock(mutex_);
    done->id = next_id_++;
    done->seq = done->id;
    done->progress_seq = 1;
    ++stats_.submissions;
    if (done->state == JobState::kRejected) ++stats_.rejected;
    if (done->state == JobState::kCompleted) {
      ++stats_.completed;
      ++stats_.cache_completions;
    }
    Job* raw = done.get();
    jobs_.emplace(raw->id, std::move(done));
    state_changed_.notify_all();
    return raw->id;
  };

  auto reject = [&](std::string domain, std::string field,
                    std::string constraint,
                    std::string message) -> std::uint64_t {
    job->state = JobState::kRejected;
    job->reject_domain = std::move(domain);
    job->reject_field = std::move(field);
    job->reject_constraint = std::move(constraint);
    job->error = std::move(message);
    return finalize(std::move(job));
  };

  // --- Admission: structured config validation -------------------------
  try {
    job->config.validate();
  } catch (const ValidationError& e) {
    return reject(e.domain(), e.field(), e.constraint(), e.what());
  }

  job->model_digest = nn::model_digest(job->model);
  job->config_digest = config_digest(job->config);
  job->measurements_target =
      job->config.categories.size() * job->config.samples_per_category;

  // --- Result cache: identical submissions are free --------------------
  // The analyzer version is part of the key: an upgraded lint gate must
  // re-judge a submission, not replay a verdict from the old analyzer.
  if (auto cached = cache_.lookup(job->model_digest, job->config_digest,
                                  analysis::analyzer_version())) {
    job->state = JobState::kCompleted;
    job->from_cache = true;
    job->report_json = std::move(cached->report_json);
    job->measurements_recorded = cached->measurements;
    job->measurements_executed = 0;
    return finalize(std::move(job));
  }

  // --- Admission: the static lint gate ---------------------------------
  analysis::LintOptions lint_options;
  lint_options.mode = job->config.kernel_mode;
  lint_options.model_name = "submission";
  lint_options.fail_on = config_.admit_fail_on;
  lint_options.fail_on_undeclared = config_.admit_fail_on_undeclared;
  lint_options.cross_check = config_.admit_cross_check;
  try {
    const analysis::LintReport lint = analysis::lint(
        job->model, dataset_input_shape(job->config.dataset), lint_options);
    if (!lint.passed)
      return reject("lint", "model", lint.failure,
                    "lint: model " + lint.failure);
  } catch (const Error& e) {
    // Shape-inference failures: the model cannot consume this dataset.
    return reject("lint", "model", e.what(), std::string("lint: ") + e.what());
  }

  // Dataset synthesis is deterministic but not free — do it before
  // taking the scheduler lock.
  job->dataset = make_dataset(job->config.dataset);

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) throw Error("service: server is shutting down");
  job->id = next_id_++;
  job->seq = job->id;
  job->job_token = server_token_.child();
  job->checkpoint_path = config_.work_dir + "/" +
                         job->model_digest.substr(0, 8) + "-" +
                         job->config_digest.substr(0, 8) + "-job" +
                         std::to_string(job->id) + ".ckpt";
  job->state = JobState::kQueued;
  ++stats_.submissions;
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  ready_.insert(raw);
  bump_locked(*raw);
  maybe_preempt_locked();
  work_ready_.notify_one();
  return raw->id;
}

void EvaluationServer::executor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (stopping_) return;
    Job* job = *ready_.begin();
    ready_.erase(ready_.begin());
    job->state = JobState::kRunning;
    job->preempt_requested = false;
    job->leg_token = job->job_token.child();
    ++job->legs;
    running_.insert(job);
    bump_locked(*job);
    lock.unlock();
    run_leg(*job);
    lock.lock();
  }
}

void EvaluationServer::run_leg(Job& job) {
  core::CampaignResult result;
  std::string error;
  bool ok = false;
  try {
    auto factory = config_.instruments();
    core::Campaign campaign(job.model, job.dataset, *factory);
    core::CampaignConfig cc = to_campaign_config(job.config);
    cc.cancel = job.leg_token;
    cc.checkpoint_path = job.checkpoint_path;
    if (job.config.deadline.count() > 0) cc.deadline = job.config.deadline;
    campaign.with_config(cc).on_progress(
        [this, &job](const core::CampaignProgress& p) {
          std::lock_guard<std::mutex> lock(mutex_);
          job.measurements_recorded = p.measurements_recorded;
          job.measurements_target = p.measurements_target;
          bump_locked(job);
        },
        config_.progress_every);
    if (job.has_checkpoint)
      result = campaign.resume(core::load_checkpoint(job.checkpoint_path));
    else
      result = campaign.run();
    ok = true;
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  running_.erase(&job);
  if (!ok) {
    fail_job_locked(job, error);
    return;
  }
  finish_leg_locked(job, std::move(result), lock);
}

void EvaluationServer::finish_leg_locked(Job& job, core::CampaignResult result,
                                         std::unique_lock<std::mutex>& lock) {
  switch (result.diagnostics.stop_reason) {
    case core::StopReason::kCompleted: {
      // Rendering runs the evaluator's full test battery — do it off the
      // scheduler lock so other tenants keep moving.
      lock.unlock();
      std::string report = make_report_json(job.model_digest,
                                            job.config_digest, job.config,
                                            result);
      lock.lock();
      job.report_json = std::move(report);
      job.measurements_recorded = result.diagnostics.measurements_recorded;
      job.measurements_executed = result.diagnostics.measurements_recorded;
      stats_.measurements_executed += job.measurements_executed;
      job.state = JobState::kCompleted;
      ++stats_.completed;
      cache_.insert(job.model_digest, job.config_digest,
                    analysis::analyzer_version(),
                    CachedResult{job.report_json, job.measurements_executed});
      // The checkpoint (and its rotation sibling) served its purpose.
      std::error_code ec;
      std::filesystem::remove(job.checkpoint_path, ec);
      std::filesystem::remove(job.checkpoint_path + ".prev", ec);
      job.has_checkpoint = false;
      bump_locked(job);
      return;
    }
    case core::StopReason::kCancelled: {
      if (stopping_ || job.job_token.cancelled()) {
        job.state = JobState::kCancelled;
        job.error =
            stopping_ ? "server shutdown" : job.job_token.message();
        ++stats_.cancelled;
        bump_locked(job);
        return;
      }
      if (job.preempt_requested) {
        // Evicted for a higher-priority tenant: the campaign flushed a
        // durable checkpoint on its way out, so the job re-enters the
        // queue and resumes bit-identically later.
        job.has_checkpoint = std::filesystem::exists(job.checkpoint_path);
        job.measurements_recorded = result.diagnostics.measurements_recorded;
        ++job.preemptions;
        ++stats_.preemptions;
        job.state = JobState::kPreempted;
        ready_.insert(&job);
        bump_locked(job);
        work_ready_.notify_one();
        return;
      }
      // A leg token tripped by nothing we know about — treat as cancel.
      job.state = JobState::kCancelled;
      job.error = "cancelled";
      ++stats_.cancelled;
      bump_locked(job);
      return;
    }
    case core::StopReason::kDeadline:
      fail_job_locked(job, "deadline of " +
                               std::to_string(job.config.deadline.count()) +
                               " ms exceeded");
      return;
    case core::StopReason::kShardStalled:
      fail_job_locked(job, "campaign shard stalled");
      return;
    case core::StopReason::kMeasurementBudget:
      fail_job_locked(job, "campaign stopped on an unexpected budget");
      return;
  }
  fail_job_locked(job, "campaign stopped for an unknown reason");
}

void EvaluationServer::fail_job_locked(Job& job, const std::string& why) {
  job.state = JobState::kFailed;
  job.error = why;
  ++stats_.failed;
  bump_locked(job);
}

void EvaluationServer::maybe_preempt_locked() {
  if (ready_.empty() || running_.size() < config_.executors) return;
  Job* best = *ready_.begin();
  Job* victim = nullptr;
  for (Job* r : running_) {
    if (r->preempt_requested) continue;  // already winding down
    if (victim == nullptr ||
        r->config.priority < victim->config.priority ||
        (r->config.priority == victim->config.priority &&
         r->seq > victim->seq))
      victim = r;
  }
  if (victim == nullptr || victim->config.priority >= best->config.priority)
    return;
  victim->preempt_requested = true;
  victim->leg_token.cancel("preempted by higher-priority job " +
                           std::to_string(best->id));
}

JobStatus EvaluationServer::snapshot_locked(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.state = job.state;
  s.priority = job.config.priority;
  s.model_digest = job.model_digest;
  s.config_digest = job.config_digest;
  s.from_cache = job.from_cache;
  s.measurements_recorded = job.measurements_recorded;
  s.measurements_target = job.measurements_target;
  s.measurements_executed = job.measurements_executed;
  s.preemptions = job.preemptions;
  s.legs = job.legs;
  s.progress_seq = job.progress_seq;
  s.error = job.error;
  s.reject_domain = job.reject_domain;
  s.reject_field = job.reject_field;
  s.reject_constraint = job.reject_constraint;
  return s;
}

EvaluationServer::Job& EvaluationServer::find_locked(std::uint64_t id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw InvalidArgument("service: unknown job id " + std::to_string(id));
  return *it->second;
}

const EvaluationServer::Job& EvaluationServer::find_locked(
    std::uint64_t id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw InvalidArgument("service: unknown job id " + std::to_string(id));
  return *it->second;
}

JobStatus EvaluationServer::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(find_locked(id));
}

JobStatus EvaluationServer::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job& job = find_locked(id);
  state_changed_.wait(lock, [&job] { return is_terminal(job.state); });
  return snapshot_locked(job);
}

JobStatus EvaluationServer::wait_progress(std::uint64_t id,
                                          std::uint64_t last_seq) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job& job = find_locked(id);
  state_changed_.wait(lock, [&job, last_seq] {
    return job.progress_seq > last_seq || is_terminal(job.state);
  });
  return snapshot_locked(job);
}

bool EvaluationServer::cancel(std::uint64_t id, const std::string& why) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job& job = find_locked(id);
  if (is_terminal(job.state)) return false;
  job.job_token.cancel(why);
  if (job.state == JobState::kQueued || job.state == JobState::kPreempted) {
    ready_.erase(&job);
    job.state = JobState::kCancelled;
    job.error = why;
    ++stats_.cancelled;
    bump_locked(job);
  }
  // A running job's leg token is a child of the job token: the campaign
  // stops at its next safe point and finish_leg_locked records the
  // cancel.
  return true;
}

std::string EvaluationServer::report(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Job& job = find_locked(id);
  if (job.state != JobState::kCompleted)
    throw InvalidArgument("service: job " + std::to_string(id) +
                          " has no report (state " + to_string(job.state) +
                          ")");
  return job.report_json;
}

ServerStats EvaluationServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void EvaluationServer::shutdown() {
  std::unique_ptr<util::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    server_token_.cancel("server shutdown");
    for (Job* j : ready_) {
      j->state = JobState::kCancelled;
      j->error = "server shutdown";
      ++stats_.cancelled;
      ++j->progress_seq;
    }
    ready_.clear();
    pool = std::move(pool_);
    work_ready_.notify_all();
    state_changed_.notify_all();
  }
  // Joining outside the lock: running legs need the mutex to finish, and
  // their tokens are already tripped via the server token.
  pool.reset();
}

std::string make_report_json(const std::string& model_digest,
                             const std::string& config_digest,
                             const JobConfig& config,
                             const core::CampaignResult& campaign) {
  core::EvaluatorConfig evaluator;
  evaluator.alpha = config.alpha;
  const core::LeakageAssessment assessment =
      core::evaluate(campaign, evaluator);
  const std::string table =
      core::render_paper_table(assessment, evaluator.events);
  // Spliced by hand because the assessment renderer produces a complete
  // JSON document of its own; everything here is deterministic given the
  // campaign samples, which is what makes cached reports byte-identical.
  std::string out = "{\"model_digest\":" + util::json_quote(model_digest);
  out += ",\"config_digest\":" + util::json_quote(config_digest);
  out += ",\"config\":" + canonical_config_json(config);
  out += ",\"measurements\":" +
         std::to_string(campaign.diagnostics.measurements_recorded);
  out += std::string(",\"alarm_raised\":") +
         (assessment.alarm_raised() ? "true" : "false");
  out += ",\"table\":" + util::json_quote(table);
  out += ",\"assessment\":" + core::render_json(assessment);
  out += "}";
  return out;
}

}  // namespace sce::service
