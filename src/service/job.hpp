// Job model of the leakage-evaluation service.
//
// A submission is (model, JobConfig): the model arrives as canonical
// nn/serialize bytes, the config names a synthetic dataset recipe plus
// the campaign and evaluator knobs.  Everything that can change the
// *result* lives in the config's digest preimage; scheduling-only fields
// (priority, deadline) are deliberately excluded, so two tenants asking
// for the same evaluation at different priorities share one cache entry.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "data/dataset.hpp"
#include "nn/layer.hpp"
#include "util/json.hpp"

namespace sce::service {

/// Scheduling priority.  Higher runs first; a queued kHigh job may
/// cooperatively preempt a running kLow one (see server.hpp).
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

std::string to_string(Priority priority);
/// Inverse of to_string ("low" | "normal" | "high"); throws
/// InvalidArgument on unknown names.
Priority parse_priority(const std::string& name);

/// Job lifecycle.  kPreempted is queued-with-checkpoint: the job was
/// evicted from its executor, its durable checkpoint flushed, and it
/// re-enters the ready queue to resume bit-identically.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kPreempted,
  kCompleted,
  kCancelled,
  kFailed,
  kRejected,
};

std::string to_string(JobState state);
bool is_terminal(JobState state);

/// Recipe for the server-side synthetic dataset a campaign profiles.
/// Part of the config digest: the recipe *is* the dataset's identity
/// (generation is deterministic in (kind, seed, index, label)).
struct DatasetSpec {
  /// "mnist-like" (1x28x28), "cifar-like" (3x32x32) or "sequence-like"
  /// ({1,T,8} waveforms).
  std::string kind = "mnist-like";
  std::uint64_t seed = 1;
  std::size_t examples_per_class = 8;
  std::size_t num_classes = 10;
  /// Center-crop image datasets to crop x crop pixels (0 = full size).
  /// Lets small test models (12x12 inputs) ride the same pipeline;
  /// rejected for sequence-like data.
  std::size_t crop = 0;
};

/// Everything a tenant controls about one evaluation job.
struct JobConfig {
  DatasetSpec dataset;
  /// Input categories to profile (the paper uses four per dataset).
  std::vector<int> categories = {0, 1, 2, 3};
  std::size_t samples_per_category = 8;
  nn::KernelMode kernel_mode = nn::KernelMode::kDataDependent;
  /// Campaign sharding (affects simulated counters for address-dependent
  /// providers, hence part of the digest).
  std::size_t num_shards = 1;
  /// Worker threads for the campaign's own sharded fan-out (execution
  /// knob only: results are bit-identical at any thread count).
  std::size_t num_threads = 1;
  std::size_t warmup_measurements = 2;
  bool interleave_categories = true;
  /// Evaluator significance level for the final report.
  double alpha = 0.05;

  // --- Scheduling-only (excluded from the digest) ----------------------
  Priority priority = Priority::kNormal;
  /// Wall-clock budget per executed leg (0 = none).  A blown deadline
  /// fails the job; it does not requeue.
  std::chrono::milliseconds deadline{0};

  /// Structured validation (util-error ValidationError, domain "job").
  /// Composes the campaign-level checks: the derived CampaignConfig is
  /// validated too, so a job can never be admitted that the campaign
  /// would reject at run time.
  void validate() const;
};

/// Deterministic JSON preimage of the config digest: result-affecting
/// fields only, fixed key order, exact number rendering.
std::string canonical_config_json(const JobConfig& config);

/// content_digest_hex(canonical_config_json(config)) — the cache key's
/// second half and the checkpoint-name ingredient.
std::string config_digest(const JobConfig& config);

/// Materialize the dataset the spec describes.  Deterministic.
data::Dataset make_dataset(const DatasetSpec& spec);

/// CHW input shape a model must accept for this dataset (what the lint
/// admission gate analyzes against).
std::vector<std::size_t> dataset_input_shape(const DatasetSpec& spec);

/// Lower the job config onto the campaign runtime.  Supervision wiring
/// (cancel token, checkpoint path) is the scheduler's job and left
/// untouched here.
core::CampaignConfig to_campaign_config(const JobConfig& config);

/// Full JSON round trip for the wire protocol (includes scheduling
/// fields, unlike canonical_config_json).  Unknown keys are rejected.
std::string job_config_to_json(const JobConfig& config);
JobConfig job_config_from_json(const std::string& json);
/// Same decoder over an already-parsed document node (how the protocol
/// dispatcher reads the "config" subtree of a submit request).
JobConfig job_config_from_value(const util::JsonValue& doc);

/// Client-visible snapshot of one job.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  Priority priority = Priority::kNormal;
  std::string model_digest;
  std::string config_digest;
  /// True when the report was served from the result cache (the job
  /// executed zero campaign measurements).
  bool from_cache = false;
  std::size_t measurements_recorded = 0;
  std::size_t measurements_target = 0;
  /// Campaign measurements this job actually executed on the service
  /// (0 for cache hits; equals measurements_recorded otherwise).
  std::size_t measurements_executed = 0;
  /// Times the job was evicted from its executor for a higher-priority
  /// tenant (each eviction flushed a durable checkpoint).
  std::size_t preemptions = 0;
  /// Executor legs run so far (1 + resumes).
  std::size_t legs = 0;
  /// Monotonic progress counter; bumps on every progress update and on
  /// every state change (the streaming verb's cursor).
  std::uint64_t progress_seq = 0;
  /// Failure / cancellation detail ("" otherwise).
  std::string error;
  /// Structured rejection cause (ValidationError relay, or domain
  /// "lint" for admission-gate failures).  Empty unless kRejected.
  std::string reject_domain;
  std::string reject_field;
  std::string reject_constraint;

  bool terminal() const { return is_terminal(state); }
};

}  // namespace sce::service
