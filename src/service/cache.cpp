#include "service/cache.hpp"

#include <utility>

#include "util/error.hpp"

namespace sce::service {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw ValidationError("cache", "capacity", "must be >= 1");
}

std::optional<CachedResult> ResultCache::lookup(
    const std::string& model_digest, const std::string& config_digest,
    const std::string& analyzer_version) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      index_.find(key_of(model_digest, config_digest, analyzer_version));
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.measurements_saved += it->second->result.measurements;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::insert(const std::string& model_digest,
                         const std::string& config_digest,
                         const std::string& analyzer_version,
                         CachedResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key =
      key_of(model_digest, config_digest, analyzer_version);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.insertions;
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace sce::service
