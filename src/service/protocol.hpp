// Wire protocol of the evaluation service, transport-free.
//
// Every message is a single JSON document; the socket layer frames it
// with a 4-byte little-endian length prefix (see socket.hpp).  Requests
// carry a "verb"; models travel as an architecture name from the
// reference zoo plus base64 canonical nn/serialize weight bytes (the
// format stores weights only, so the receiver rebuilds the architecture
// and loads the weights into it).
//
// Verbs:
//   submit           {verb, architecture, weights_b64, config, wait?}
//   status           {verb, id}
//   wait             {verb, id}               — blocks until terminal
//   stream-progress  {verb, id, last_seq}     — long-poll one update
//   cancel           {verb, id, why?}
//   report           {verb, id}
//   stats            {verb}
//   shutdown         {verb}
//
// Responses are {"ok":true, ...} or {"ok":false,"error":...,
// "error_type":"invalid-argument"|"error"}.  handle_request is the whole
// server-side dispatcher: one request document in, one response document
// out — the socket front end adds nothing but framing, which is what
// makes the protocol testable in-process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/job.hpp"
#include "service/server.hpp"
#include "util/json.hpp"

namespace sce::service {

/// Frames larger than this are rejected as malformed (a corrupt length
/// prefix must not trigger a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Rebuild a reference architecture by wire name: "mnist-cnn",
/// "cifar-cnn" or "sequence-rnn".  Throws InvalidArgument otherwise.
nn::Sequential build_architecture(const std::string& name);
std::vector<std::string> known_architectures();

// --- Client-side request builders --------------------------------------

/// Serialize `model`'s weights (canonical bytes, base64) into a submit
/// request for architecture `architecture`.
std::string make_submit_request(const std::string& architecture,
                                const nn::Sequential& model,
                                const JobConfig& config);
std::string make_status_request(std::uint64_t id);
std::string make_wait_request(std::uint64_t id);
std::string make_stream_progress_request(std::uint64_t id,
                                         std::uint64_t last_seq);
std::string make_cancel_request(std::uint64_t id, const std::string& why);
std::string make_report_request(std::uint64_t id);
std::string make_stats_request();
std::string make_shutdown_request();

// --- Status document ----------------------------------------------------

/// Render a job snapshot as the protocol's status object.
std::string status_json(const JobStatus& status);
/// Parse the status object back (client side).
JobStatus parse_status(const util::JsonValue& doc);

// --- Server-side dispatcher ---------------------------------------------

/// Execute one request against `server` and return the response
/// document.  Tenant mistakes (unknown verbs, malformed JSON, unknown
/// ids) come back as ok:false responses, never as exceptions.  Sets
/// `shutdown_requested` when the request was a shutdown verb (the
/// transport decides what that means for its accept loop).
std::string handle_request(EvaluationServer& server,
                           const std::string& request_json,
                           bool& shutdown_requested);

}  // namespace sce::service
