// Result cache of the evaluation service.
//
// Keyed by (model digest, config digest, analyzer version): the digests
// are pure content hashes, so a hit proves the cached report was
// produced from the same serialized model bytes and the same
// result-affecting config; the analyzer version pins the *code* that
// judged them — an admission verdict can change when the analyzer does
// (new derivation rules, new symbolic models), so reports cached by an
// older analyzer must miss rather than be served stale.  Bounded LRU
// with full hit/miss/eviction accounting (the accounting is
// load-bearing: tests and the CI smoke stage assert that a resubmission
// is a hit that executed zero new measurements).
//
// Thread-safe; every public member takes the internal mutex.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace sce::service {

/// One completed evaluation, as the cache stores it.
struct CachedResult {
  /// The final report document, returned byte-identically on every hit.
  std::string report_json;
  /// Campaign measurements the producing run executed (for accounting —
  /// these are the measurements a hit saves).
  std::size_t measurements = 0;
};

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  /// Sum of `measurements` over all hits: campaign work the cache
  /// amortized away.
  std::size_t measurements_saved = 0;
};

class ResultCache {
 public:
  /// `capacity` = max entries; at least 1.
  explicit ResultCache(std::size_t capacity);

  /// Look up (model_digest, config_digest, analyzer_version); counts a
  /// hit or a miss and refreshes LRU order on hit.  The server passes
  /// analysis::analyzer_version() — the cache itself stays agnostic so
  /// tests can exercise version transitions.
  std::optional<CachedResult> lookup(const std::string& model_digest,
                                     const std::string& config_digest,
                                     const std::string& analyzer_version);

  /// Insert (or overwrite) an entry, evicting the least recently used
  /// entry beyond capacity.
  void insert(const std::string& model_digest,
              const std::string& config_digest,
              const std::string& analyzer_version, CachedResult result);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    CachedResult result;
  };

  static std::string key_of(const std::string& model_digest,
                            const std::string& config_digest,
                            const std::string& analyzer_version) {
    return model_digest + "/" + config_digest + "/" + analyzer_version;
  }

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Most recently used at the front.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace sce::service
