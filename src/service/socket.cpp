#include "service/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "util/error.hpp"

namespace sce::service {

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw InvalidArgument("socket: path too long for AF_UNIX: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("socket: send failed: " +
                    std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Read exactly `size` bytes.  Returns false on EOF at offset 0 (and
/// only there — EOF mid-message is a protocol violation).
bool recv_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("socket: recv failed: " +
                    std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw IoError("socket: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

UnixSocket::~UnixSocket() { close(); }

UnixSocket::UnixSocket(UnixSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UnixSocket UnixSocket::connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw IoError("socket: socket() failed: " +
                  std::string(std::strerror(errno)));
  UnixSocket socket(fd);
  const sockaddr_un addr = make_address(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw IoError("socket: connect to " + path +
                  " failed: " + std::string(std::strerror(errno)));
  return socket;
}

void UnixSocket::send_frame(const std::string& payload) {
  if (!valid()) throw IoError("socket: send on closed socket");
  if (payload.size() > kMaxFrameBytes)
    throw InvalidArgument("socket: frame of " +
                          std::to_string(payload.size()) +
                          " bytes exceeds the protocol maximum");
  const auto size = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(size & 0xff);
  prefix[1] = static_cast<char>((size >> 8) & 0xff);
  prefix[2] = static_cast<char>((size >> 16) & 0xff);
  prefix[3] = static_cast<char>((size >> 24) & 0xff);
  send_all(fd_, prefix, sizeof(prefix));
  send_all(fd_, payload.data(), payload.size());
}

std::optional<std::string> UnixSocket::recv_frame() {
  if (!valid()) throw IoError("socket: recv on closed socket");
  char prefix[4];
  if (!recv_all(fd_, prefix, sizeof(prefix))) return std::nullopt;
  const std::uint32_t size =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (size > kMaxFrameBytes)
    throw IoError("socket: incoming frame of " + std::to_string(size) +
                  " bytes exceeds the protocol maximum");
  std::string payload(size, '\0');
  if (size > 0 && !recv_all(fd_, payload.data(), size))
    throw IoError("socket: connection closed mid-frame");
  return payload;
}

void UnixSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw IoError("socket: socket() failed: " +
                  std::string(std::strerror(errno)));
  const sockaddr_un addr = make_address(path_);
  ::unlink(path_.c_str());  // a stale socket file blocks bind
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw IoError("socket: bind to " + path_ + " failed: " + why);
  }
  if (::listen(fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw IoError("socket: listen on " + path_ + " failed: " + why);
  }
}

UnixListener::~UnixListener() { close(); }

UnixSocket UnixListener::accept() {
  if (fd_ < 0) throw IoError("socket: accept on closed listener");
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return UnixSocket(client);
    if (errno == EINTR) continue;
    throw IoError("socket: accept failed: " +
                  std::string(std::strerror(errno)));
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    // shutdown() first so a thread blocked in accept() wakes with an
    // error instead of waiting for a connection that will never come.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

SocketFrontEnd::SocketFrontEnd(EvaluationServer& server,
                               const std::string& socket_path)
    : server_(server), listener_(socket_path) {}

SocketFrontEnd::~SocketFrontEnd() {
  stop();
  for (std::thread& t : connections_)
    if (t.joinable()) t.join();
}

void SocketFrontEnd::serve() {
  for (;;) {
    UnixSocket client;
    try {
      client = listener_.accept();
    } catch (const IoError&) {
      break;  // listener closed by stop()
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) break;
    live_fds_.insert(client.fd());
    connections_.emplace_back(
        [this, socket = std::move(client)]() mutable {
          handle_connection(std::move(socket));
        });
  }
  std::vector<std::thread> drain;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drain.swap(connections_);
  }
  for (std::thread& t : drain) t.join();
}

void SocketFrontEnd::handle_connection(UnixSocket socket) {
  const int fd = socket.fd();
  try {
    for (;;) {
      const std::optional<std::string> request = socket.recv_frame();
      if (!request.has_value()) break;  // tenant hung up
      bool shutdown_requested = false;
      const std::string response =
          handle_request(server_, *request, shutdown_requested);
      socket.send_frame(response);
      if (shutdown_requested) {
        stop();
        break;
      }
    }
  } catch (const std::exception&) {
    // A torn connection only ends this tenant's session.
  }
  std::lock_guard<std::mutex> lock(mutex_);
  live_fds_.erase(fd);
}

void SocketFrontEnd::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Kick handlers out of recv_frame / long polls: shutting the server
    // down trips every job token, which unblocks wait()-style verbs;
    // shutting the fds down unblocks idle reads.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  server_.shutdown();
  listener_.close();
}

std::string request_reply(UnixSocket& socket, const std::string& request) {
  socket.send_frame(request);
  const std::optional<std::string> reply = socket.recv_frame();
  if (!reply.has_value())
    throw IoError("socket: server closed the connection before replying");
  return *reply;
}

}  // namespace sce::service
