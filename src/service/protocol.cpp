#include "service/protocol.hpp"

#include <sstream>
#include <utility>

#include "nn/serialize.hpp"
#include "nn/zoo.hpp"
#include "util/base64.hpp"
#include "util/error.hpp"

namespace sce::service {

namespace {

std::string ok_prefix() { return "{\"ok\":true"; }

std::string error_response(const std::string& type,
                           const std::string& message) {
  util::JsonWriter w;
  w.begin_object();
  w.key("ok").value(false);
  w.key("error_type").value(type);
  w.key("error").value(message);
  w.end_object();
  return w.str();
}

std::string id_request(const std::string& verb, std::uint64_t id) {
  util::JsonWriter w;
  w.begin_object();
  w.key("verb").value(verb);
  w.key("id").value(static_cast<std::uint64_t>(id));
  w.end_object();
  return w.str();
}

std::uint64_t require_id(const util::JsonValue& doc) {
  const util::JsonValue* id = doc.find("id");
  if (id == nullptr)
    throw InvalidArgument("protocol: request is missing 'id'");
  const std::int64_t value = id->as_int();
  if (value < 0) throw InvalidArgument("protocol: 'id' must be >= 0");
  return static_cast<std::uint64_t>(value);
}

}  // namespace

nn::Sequential build_architecture(const std::string& name) {
  if (name == "mnist-cnn") return nn::build_mnist_cnn();
  if (name == "cifar-cnn") return nn::build_cifar_cnn();
  if (name == "sequence-rnn") return nn::build_sequence_rnn();
  throw InvalidArgument("protocol: unknown architecture '" + name +
                        "' (known: mnist-cnn, cifar-cnn, sequence-rnn)");
}

std::vector<std::string> known_architectures() {
  return {"mnist-cnn", "cifar-cnn", "sequence-rnn"};
}

std::string make_submit_request(const std::string& architecture,
                                const nn::Sequential& model,
                                const JobConfig& config) {
  // config is already a complete JSON object from the job layer; splice
  // it rather than re-walking the fields here.
  std::string out = "{\"verb\":\"submit\"";
  out += ",\"architecture\":" + util::json_quote(architecture);
  out += ",\"weights_b64\":" +
         util::json_quote(util::base64_encode(nn::serialized_bytes(model)));
  out += ",\"config\":" + job_config_to_json(config);
  out += "}";
  return out;
}

std::string make_status_request(std::uint64_t id) {
  return id_request("status", id);
}

std::string make_wait_request(std::uint64_t id) {
  return id_request("wait", id);
}

std::string make_stream_progress_request(std::uint64_t id,
                                         std::uint64_t last_seq) {
  util::JsonWriter w;
  w.begin_object();
  w.key("verb").value("stream-progress");
  w.key("id").value(static_cast<std::uint64_t>(id));
  w.key("last_seq").value(static_cast<std::uint64_t>(last_seq));
  w.end_object();
  return w.str();
}

std::string make_cancel_request(std::uint64_t id, const std::string& why) {
  util::JsonWriter w;
  w.begin_object();
  w.key("verb").value("cancel");
  w.key("id").value(static_cast<std::uint64_t>(id));
  w.key("why").value(why);
  w.end_object();
  return w.str();
}

std::string make_report_request(std::uint64_t id) {
  return id_request("report", id);
}

std::string make_stats_request() { return "{\"verb\":\"stats\"}"; }

std::string make_shutdown_request() { return "{\"verb\":\"shutdown\"}"; }

std::string status_json(const JobStatus& status) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<std::uint64_t>(status.id));
  w.key("state").value(to_string(status.state));
  w.key("priority").value(to_string(status.priority));
  w.key("model_digest").value(status.model_digest);
  w.key("config_digest").value(status.config_digest);
  w.key("from_cache").value(status.from_cache);
  w.key("measurements_recorded")
      .value(static_cast<std::uint64_t>(status.measurements_recorded));
  w.key("measurements_target")
      .value(static_cast<std::uint64_t>(status.measurements_target));
  w.key("measurements_executed")
      .value(static_cast<std::uint64_t>(status.measurements_executed));
  w.key("preemptions").value(static_cast<std::uint64_t>(status.preemptions));
  w.key("legs").value(static_cast<std::uint64_t>(status.legs));
  w.key("progress_seq")
      .value(static_cast<std::uint64_t>(status.progress_seq));
  w.key("error").value(status.error);
  w.key("reject_domain").value(status.reject_domain);
  w.key("reject_field").value(status.reject_field);
  w.key("reject_constraint").value(status.reject_constraint);
  w.end_object();
  return w.str();
}

JobStatus parse_status(const util::JsonValue& doc) {
  JobStatus s;
  s.id = static_cast<std::uint64_t>(doc.at("id").as_int());
  const std::string& state = doc.at("state").as_string();
  bool known = false;
  for (const JobState candidate :
       {JobState::kQueued, JobState::kRunning, JobState::kPreempted,
        JobState::kCompleted, JobState::kCancelled, JobState::kFailed,
        JobState::kRejected}) {
    if (to_string(candidate) == state) {
      s.state = candidate;
      known = true;
      break;
    }
  }
  if (!known)
    throw InvalidArgument("protocol: unknown job state '" + state + "'");
  s.priority = parse_priority(doc.at("priority").as_string());
  s.model_digest = doc.at("model_digest").as_string();
  s.config_digest = doc.at("config_digest").as_string();
  s.from_cache = doc.at("from_cache").as_bool();
  s.measurements_recorded =
      static_cast<std::size_t>(doc.at("measurements_recorded").as_int());
  s.measurements_target =
      static_cast<std::size_t>(doc.at("measurements_target").as_int());
  s.measurements_executed =
      static_cast<std::size_t>(doc.at("measurements_executed").as_int());
  s.preemptions = static_cast<std::size_t>(doc.at("preemptions").as_int());
  s.legs = static_cast<std::size_t>(doc.at("legs").as_int());
  s.progress_seq =
      static_cast<std::uint64_t>(doc.at("progress_seq").as_int());
  s.error = doc.at("error").as_string();
  s.reject_domain = doc.at("reject_domain").as_string();
  s.reject_field = doc.at("reject_field").as_string();
  s.reject_constraint = doc.at("reject_constraint").as_string();
  return s;
}

std::string handle_request(EvaluationServer& server,
                           const std::string& request_json,
                           bool& shutdown_requested) {
  shutdown_requested = false;
  try {
    const util::JsonValue doc = util::parse_json(request_json);
    const util::JsonValue* verb_value = doc.find("verb");
    if (verb_value == nullptr)
      return error_response("invalid-argument",
                            "protocol: request is missing 'verb'");
    const std::string& verb = verb_value->as_string();

    if (verb == "submit") {
      nn::Sequential model =
          build_architecture(doc.at("architecture").as_string());
      const std::string weights =
          util::base64_decode(doc.at("weights_b64").as_string());
      std::istringstream in(weights);
      nn::load_model(model, in);
      const JobConfig config = job_config_from_value(doc.at("config"));
      const std::uint64_t id = server.submit(std::move(model), config);
      JobStatus status = server.status(id);
      if (const util::JsonValue* wait = doc.find("wait");
          wait != nullptr && wait->as_bool())
        status = server.wait(id);
      return ok_prefix() + ",\"id\":" + std::to_string(id) +
             ",\"status\":" + status_json(status) + "}";
    }
    if (verb == "status")
      return ok_prefix() +
             ",\"status\":" + status_json(server.status(require_id(doc))) +
             "}";
    if (verb == "wait")
      return ok_prefix() +
             ",\"status\":" + status_json(server.wait(require_id(doc))) + "}";
    if (verb == "stream-progress") {
      const std::uint64_t id = require_id(doc);
      const std::uint64_t last_seq =
          static_cast<std::uint64_t>(doc.at("last_seq").as_int());
      return ok_prefix() +
             ",\"status\":" + status_json(server.wait_progress(id, last_seq)) +
             "}";
    }
    if (verb == "cancel") {
      const std::uint64_t id = require_id(doc);
      std::string why = "client cancel";
      if (const util::JsonValue* w = doc.find("why")) why = w->as_string();
      const bool cancelled = server.cancel(id, why);
      return ok_prefix() +
             std::string(",\"cancelled\":") + (cancelled ? "true" : "false") +
             "}";
    }
    if (verb == "report")
      return ok_prefix() + ",\"report\":" + server.report(require_id(doc)) +
             "}";
    if (verb == "stats") {
      const ServerStats s = server.stats();
      const CacheStats c = server.cache_stats();
      util::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("server").begin_object();
      w.key("submissions").value(static_cast<std::uint64_t>(s.submissions));
      w.key("rejected").value(static_cast<std::uint64_t>(s.rejected));
      w.key("completed").value(static_cast<std::uint64_t>(s.completed));
      w.key("cancelled").value(static_cast<std::uint64_t>(s.cancelled));
      w.key("failed").value(static_cast<std::uint64_t>(s.failed));
      w.key("cache_completions")
          .value(static_cast<std::uint64_t>(s.cache_completions));
      w.key("preemptions").value(static_cast<std::uint64_t>(s.preemptions));
      w.key("measurements_executed")
          .value(static_cast<std::uint64_t>(s.measurements_executed));
      w.end_object();
      w.key("cache").begin_object();
      w.key("hits").value(static_cast<std::uint64_t>(c.hits));
      w.key("misses").value(static_cast<std::uint64_t>(c.misses));
      w.key("insertions").value(static_cast<std::uint64_t>(c.insertions));
      w.key("evictions").value(static_cast<std::uint64_t>(c.evictions));
      w.key("entries").value(static_cast<std::uint64_t>(c.entries));
      w.key("measurements_saved")
          .value(static_cast<std::uint64_t>(c.measurements_saved));
      w.end_object();
      w.end_object();
      return w.str();
    }
    if (verb == "shutdown") {
      shutdown_requested = true;
      return "{\"ok\":true}";
    }
    return error_response("invalid-argument",
                          "protocol: unknown verb '" + verb + "'");
  } catch (const InvalidArgument& e) {
    return error_response("invalid-argument", e.what());
  } catch (const std::exception& e) {
    return error_response("error", e.what());
  }
}

}  // namespace sce::service
