// AF_UNIX transport for the evaluation service.
//
// Framing: every message is a 4-byte little-endian payload length
// followed by that many bytes of JSON (the documents of protocol.hpp).
// UnixSocket/UnixListener are thin RAII wrappers over the POSIX calls;
// SocketFrontEnd glues a listener to an EvaluationServer — one thread
// per connection, each request answered by protocol::handle_request, so
// long-poll verbs (wait, stream-progress) block only their own tenant.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace sce::service {

/// A connected stream socket carrying length-prefixed frames.  Move-only.
class UnixSocket {
 public:
  UnixSocket() = default;
  /// Adopt an already-connected fd.
  explicit UnixSocket(int fd) : fd_(fd) {}
  ~UnixSocket();

  UnixSocket(UnixSocket&& other) noexcept;
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  /// Connect to a listening unix socket; throws IoError on failure.
  static UnixSocket connect_to(const std::string& path);

  /// Write one frame (length prefix + payload); throws IoError.
  void send_frame(const std::string& payload);
  /// Read one frame.  nullopt on clean EOF before any byte; throws
  /// IoError on truncation, oversized frames or transport errors.
  std::optional<std::string> recv_frame();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Bound + listening unix socket.  Unlinks a stale socket file on bind
/// and removes its own on destruction.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Block for the next connection; throws IoError once closed.
  UnixSocket accept();
  /// Close the listening fd (unblocks accept) and unlink the path.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// The service's socket front end: accept loop + per-connection request
/// threads.  serve() blocks until a client sends the shutdown verb or
/// stop() is called from another thread; either way it drains connection
/// threads before returning.
class SocketFrontEnd {
 public:
  SocketFrontEnd(EvaluationServer& server, const std::string& socket_path);
  ~SocketFrontEnd();

  SocketFrontEnd(const SocketFrontEnd&) = delete;
  SocketFrontEnd& operator=(const SocketFrontEnd&) = delete;

  /// Run the accept loop on the calling thread.
  void serve();
  /// Request serve() to wind down (idempotent, callable from any thread
  /// — including a connection handler, which is how the shutdown verb
  /// works).
  void stop();

  const std::string& socket_path() const { return listener_.path(); }

 private:
  void handle_connection(UnixSocket socket);

  EvaluationServer& server_;
  UnixListener listener_;
  std::mutex mutex_;
  bool stopping_ = false;
  std::vector<std::thread> connections_;
  /// Live connection fds, shut down on stop() so handlers blocked in
  /// recv_frame (idle tenants) or long polls wind down promptly.
  std::set<int> live_fds_;
};

/// Client convenience: send one request frame and block for the reply.
std::string request_reply(UnixSocket& socket, const std::string& request);

}  // namespace sce::service
