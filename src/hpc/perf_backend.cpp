#include "hpc/perf_backend.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace sce::hpc {

#ifdef __linux__

namespace {

std::string& last_probe_error() {
  static std::string error;
  return error;
}

std::uint64_t perf_config_for(HpcEvent event) {
  switch (event) {
    case HpcEvent::kBranches:
      return PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
    case HpcEvent::kBranchMisses:
      return PERF_COUNT_HW_BRANCH_MISSES;
    case HpcEvent::kBusCycles:
      return PERF_COUNT_HW_BUS_CYCLES;
    case HpcEvent::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
    case HpcEvent::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case HpcEvent::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
    case HpcEvent::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case HpcEvent::kRefCycles:
      return PERF_COUNT_HW_REF_CPU_CYCLES;
  }
  return 0;
}

int open_counter(HpcEvent event) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = perf_config_for(event);
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // usable at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

}  // namespace

PerfEventBackend::PerfEventBackend() {
  for (HpcEvent event : all_events()) {
    const int fd = open_counter(event);
    if (fd >= 0) {
      counters_.push_back({event, fd});
    } else {
      util::log_debug("perf backend: event ", to_string(event),
                      " unavailable: ", std::strerror(errno));
    }
  }
  if (counters_.empty())
    throw Unsupported(
        "perf_event_open: no hardware counter could be opened "
        "(no PMU or perf_event_paranoid too restrictive)");
}

PerfEventBackend::~PerfEventBackend() {
  for (const Counter& c : counters_) close(c.fd);
}

std::vector<HpcEvent> PerfEventBackend::supported_events() const {
  std::vector<HpcEvent> events;
  events.reserve(counters_.size());
  for (const Counter& c : counters_) events.push_back(c.event);
  return events;
}

void PerfEventBackend::start() {
  for (const Counter& c : counters_) {
    ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfEventBackend::stop() {
  for (const Counter& c : counters_) ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
}

CounterSample PerfEventBackend::read() {
  CounterSample sample;
  for (const Counter& c : counters_) {
    std::uint64_t value = 0;
    if (::read(c.fd, &value, sizeof(value)) == sizeof(value))
      sample[c.event] = value;
  }
  return sample;
}

bool PerfEventBackend::probe() {
  const int fd = open_counter(HpcEvent::kInstructions);
  if (fd >= 0) {
    close(fd);
    last_probe_error().clear();
    return true;
  }
  last_probe_error() = std::strerror(errno);
  return false;
}

std::string PerfEventBackend::probe_error() { return last_probe_error(); }

#else  // !__linux__

PerfEventBackend::PerfEventBackend() {
  throw Unsupported("perf_event_open is Linux-only");
}
PerfEventBackend::~PerfEventBackend() = default;
std::vector<HpcEvent> PerfEventBackend::supported_events() const {
  return {};
}
void PerfEventBackend::start() {}
void PerfEventBackend::stop() {}
CounterSample PerfEventBackend::read() { return {}; }
bool PerfEventBackend::probe() { return false; }
std::string PerfEventBackend::probe_error() { return "not Linux"; }

#endif

}  // namespace sce::hpc
