#include "hpc/perf_backend.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace sce::hpc {

#ifdef __linux__

namespace {

std::string& last_probe_error() {
  static std::string error;
  return error;
}

std::uint64_t perf_config_for(HpcEvent event) {
  switch (event) {
    case HpcEvent::kBranches:
      return PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
    case HpcEvent::kBranchMisses:
      return PERF_COUNT_HW_BRANCH_MISSES;
    case HpcEvent::kBusCycles:
      return PERF_COUNT_HW_BUS_CYCLES;
    case HpcEvent::kCacheMisses:
      return PERF_COUNT_HW_CACHE_MISSES;
    case HpcEvent::kCacheReferences:
      return PERF_COUNT_HW_CACHE_REFERENCES;
    case HpcEvent::kCycles:
      return PERF_COUNT_HW_CPU_CYCLES;
    case HpcEvent::kInstructions:
      return PERF_COUNT_HW_INSTRUCTIONS;
    case HpcEvent::kRefCycles:
      return PERF_COUNT_HW_REF_CPU_CYCLES;
  }
  return 0;
}

int open_counter(HpcEvent event) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = perf_config_for(event);
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // usable at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  // Ask the kernel how long the event was actually scheduled on a
  // hardware counter, so multiplexed counts can be detected and scaled
  // instead of masquerading as category differences.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

/// Layout matching the read_format above.
struct CounterReadout {
  std::uint64_t value = 0;
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
};

}  // namespace

PerfEventBackend::PerfEventBackend() {
  for (HpcEvent event : all_events()) {
    const int fd = open_counter(event);
    if (fd >= 0) {
      counters_.push_back({event, fd});
    } else {
      util::log_debug("perf backend: event ", to_string(event),
                      " unavailable: ", std::strerror(errno));
    }
  }
  if (counters_.empty())
    throw Unsupported(
        "perf_event_open: no hardware counter could be opened "
        "(no PMU or perf_event_paranoid too restrictive)");
}

PerfEventBackend::~PerfEventBackend() {
  for (const Counter& c : counters_) close(c.fd);
}

std::vector<HpcEvent> PerfEventBackend::supported_events() const {
  std::vector<HpcEvent> events;
  events.reserve(counters_.size());
  for (const Counter& c : counters_) events.push_back(c.event);
  return events;
}

void PerfEventBackend::start() {
  for (const Counter& c : counters_) {
    ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfEventBackend::stop() {
  for (const Counter& c : counters_) ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
}

CounterSample PerfEventBackend::read() {
  CounterSample sample = CounterSample::all_missing();
  for (const Counter& c : counters_) {
    const std::size_t idx = static_cast<std::size_t>(c.event);
    last_multiplexed_[idx] = false;

    CounterReadout readout;
    ssize_t n = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      n = ::read(c.fd, &readout, sizeof(readout));
      if (n >= 0 || errno != EINTR) break;
      // Interrupted by a signal before any bytes transferred: retry.
    }
    if (n != static_cast<ssize_t>(sizeof(readout))) {
      ++read_failures_[idx];
      util::log_warn("perf backend: read of ", to_string(c.event),
                     n < 0 ? std::string(" failed: ") + std::strerror(errno)
                           : std::string(" returned short count"));
      continue;  // event stays missing in the sample
    }

    std::uint64_t value = readout.value;
    if (readout.time_running < readout.time_enabled) {
      ++multiplexed_reads_[idx];
      last_multiplexed_[idx] = true;
      if (readout.time_running == 0) {
        // Never scheduled during the measurement: no data to scale.
        ++read_failures_[idx];
        util::log_warn("perf backend: event ", to_string(c.event),
                       " was never scheduled (fully multiplexed out)");
        continue;
      }
      value = static_cast<std::uint64_t>(
          static_cast<double>(readout.value) *
          (static_cast<double>(readout.time_enabled) /
           static_cast<double>(readout.time_running)));
      util::log_debug("perf backend: event ", to_string(c.event),
                      " multiplexed (running ", readout.time_running, " of ",
                      readout.time_enabled, " ns); count scaled");
    }
    sample.set(c.event, value);
  }
  return sample;
}

std::size_t PerfEventBackend::read_failures(HpcEvent event) const {
  return read_failures_[static_cast<std::size_t>(event)];
}

bool PerfEventBackend::was_multiplexed(HpcEvent event) const {
  return last_multiplexed_[static_cast<std::size_t>(event)];
}

std::size_t PerfEventBackend::multiplexed_reads(HpcEvent event) const {
  return multiplexed_reads_[static_cast<std::size_t>(event)];
}

bool PerfEventBackend::probe() {
  const int fd = open_counter(HpcEvent::kInstructions);
  if (fd >= 0) {
    close(fd);
    last_probe_error().clear();
    return true;
  }
  last_probe_error() = std::strerror(errno);
  return false;
}

std::string PerfEventBackend::probe_error() { return last_probe_error(); }

#else  // !__linux__

PerfEventBackend::PerfEventBackend() {
  throw Unsupported("perf_event_open is Linux-only");
}
PerfEventBackend::~PerfEventBackend() = default;
std::vector<HpcEvent> PerfEventBackend::supported_events() const {
  return {};
}
void PerfEventBackend::start() {}
void PerfEventBackend::stop() {}
CounterSample PerfEventBackend::read() { return CounterSample::all_missing(); }
std::size_t PerfEventBackend::read_failures(HpcEvent) const { return 0; }
bool PerfEventBackend::was_multiplexed(HpcEvent) const { return false; }
std::size_t PerfEventBackend::multiplexed_reads(HpcEvent) const { return 0; }
bool PerfEventBackend::probe() { return false; }
std::string PerfEventBackend::probe_error() { return "not Linux"; }

#endif

}  // namespace sce::hpc
