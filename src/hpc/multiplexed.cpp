#include "hpc/multiplexed.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sce::hpc {

MultiplexedPmu::MultiplexedPmu(CounterProvider& inner, MultiplexConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {
  if (config_.hardware_counters == 0)
    throw InvalidArgument("MultiplexedPmu: need at least one counter");
  if (config_.slices_per_measurement == 0)
    throw InvalidArgument("MultiplexedPmu: need at least one slice");
  if (config_.extrapolation_noise < 0.0)
    throw InvalidArgument("MultiplexedPmu: noise must be non-negative");
}

std::vector<HpcEvent> MultiplexedPmu::supported_events() const {
  return inner_.supported_events();
}

bool MultiplexedPmu::set_measurement_key(std::uint64_t key) {
  rng_ = util::Rng(util::mix64(config_.seed, key));
  // The kernel's rotation list position is sequential state (it carries
  // across measurements); under a key it becomes a function of the key so
  // the scheduled windows do not depend on measurement order.
  rotation_ = static_cast<std::size_t>(
      util::mix64(config_.seed ^ 0x5EEDULL, key) % kNumEvents);
  (void)inner_.set_measurement_key(key);
  return true;
}

void MultiplexedPmu::start() { inner_.start(); }

void MultiplexedPmu::stop() { inner_.stop(); }

double MultiplexedPmu::scheduled_fraction(HpcEvent event) const {
  return last_fraction_[static_cast<std::size_t>(event)];
}

CounterSample MultiplexedPmu::read() {
  const CounterSample true_counts = inner_.read();
  const std::size_t n = kNumEvents;
  if (config_.hardware_counters >= n) {
    // Enough counters: no multiplexing, exact counts.
    last_fraction_.fill(1.0);
    return true_counts;
  }

  // Round-robin schedule: in each slice, a contiguous (mod n) window of
  // `hardware_counters` events is live; the window advances by
  // `hardware_counters` each slice, continuing across measurements (the
  // kernel's rotation list behaves the same way).
  std::array<std::size_t, kNumEvents> live_slices{};
  for (std::size_t s = 0; s < config_.slices_per_measurement; ++s) {
    for (std::size_t k = 0; k < config_.hardware_counters; ++k)
      ++live_slices[(rotation_ + k) % n];
    rotation_ = (rotation_ + config_.hardware_counters) % n;
  }

  CounterSample estimated;
  for (HpcEvent e : all_events()) {
    const std::size_t idx = static_cast<std::size_t>(e);
    const double fraction =
        static_cast<double>(live_slices[idx]) /
        static_cast<double>(config_.slices_per_measurement);
    last_fraction_[idx] = fraction;
    if (!true_counts.has(e)) {
      estimated.drop(e);  // the wrapped provider could not count it
      continue;
    }
    if (fraction <= 0.0) {
      estimated[e] = 0;  // never scheduled: the kernel reports 0
      continue;
    }
    // The kernel reports count/fraction; the unobserved part carries
    // extrapolation error growing with the unobserved fraction.
    const double unobserved = 1.0 - fraction;
    const double noise =
        rng_.normal(0.0, config_.extrapolation_noise * unobserved);
    const double scaled =
        static_cast<double>(true_counts[e]) * (1.0 + noise);
    estimated[e] =
        static_cast<std::uint64_t>(std::llround(std::max(0.0, scaled)));
  }
  return estimated;
}

}  // namespace sce::hpc
