#include "hpc/session.hpp"

namespace sce::hpc {

CounterSample measure(CounterProvider& provider,
                      const std::function<void()>& work) {
  provider.start();
  try {
    work();
  } catch (...) {
    // Keep the workload's exception even if stop() also fails.
    try {
      provider.stop();
    } catch (...) {
    }
    throw;
  }
  provider.stop();
  return provider.read();
}

}  // namespace sce::hpc
