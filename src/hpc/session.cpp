#include "hpc/session.hpp"

namespace sce::hpc {

CounterSample measure(CounterProvider& provider,
                      const std::function<void()>& work) {
  provider.start();
  try {
    work();
  } catch (...) {
    provider.stop();
    throw;
  }
  provider.stop();
  return provider.read();
}

}  // namespace sce::hpc
