// The eight basic hardware events the paper monitors (Figure 2(b)) —
// exactly the set `perf stat` reports by default on the paper's platform,
// and the ones "supported across processors" that Section 3 restricts to.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace sce::hpc {

enum class HpcEvent : std::uint8_t {
  kBranches = 0,
  kBranchMisses,
  kBusCycles,
  kCacheMisses,
  kCacheReferences,
  kCycles,
  kInstructions,
  kRefCycles,
};

inline constexpr std::size_t kNumEvents = 8;

/// All events in perf's display order (alphabetical, as in Fig. 2(b)).
const std::array<HpcEvent, kNumEvents>& all_events();

/// perf's event name, e.g. "cache-misses".
std::string to_string(HpcEvent event);

/// Parse a perf event name; nullopt if unknown.
std::optional<HpcEvent> parse_event(const std::string& name);

}  // namespace sce::hpc
