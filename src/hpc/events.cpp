#include "hpc/events.hpp"

namespace sce::hpc {

const std::array<HpcEvent, kNumEvents>& all_events() {
  static const std::array<HpcEvent, kNumEvents> kAll = {
      HpcEvent::kBranches,        HpcEvent::kBranchMisses,
      HpcEvent::kBusCycles,       HpcEvent::kCacheMisses,
      HpcEvent::kCacheReferences, HpcEvent::kCycles,
      HpcEvent::kInstructions,    HpcEvent::kRefCycles,
  };
  return kAll;
}

std::string to_string(HpcEvent event) {
  switch (event) {
    case HpcEvent::kBranches:
      return "branches";
    case HpcEvent::kBranchMisses:
      return "branch-misses";
    case HpcEvent::kBusCycles:
      return "bus-cycles";
    case HpcEvent::kCacheMisses:
      return "cache-misses";
    case HpcEvent::kCacheReferences:
      return "cache-references";
    case HpcEvent::kCycles:
      return "cycles";
    case HpcEvent::kInstructions:
      return "instructions";
    case HpcEvent::kRefCycles:
      return "ref-cycles";
  }
  return "?";
}

std::optional<HpcEvent> parse_event(const std::string& name) {
  for (HpcEvent e : all_events())
    if (to_string(e) == name) return e;
  return std::nullopt;
}

}  // namespace sce::hpc
