#include "hpc/simulated_pmu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sce::hpc {

namespace {
// Base of the canonical frame space; high enough to never collide with
// anything meaningful.
constexpr std::uintptr_t kNormalizedBase = std::uintptr_t{1} << 34;
constexpr std::uintptr_t kPageBits = 12;  // 4 KiB frames
constexpr std::uintptr_t kPageOffsetMask = (std::uintptr_t{1} << kPageBits) - 1;
}  // namespace

std::array<EnvironmentSpec, kNumEvents>
SimulatedPmuConfig::default_environment() {
  // Scaled (~1/1000) from the paper's Fig. 2(b) perf dump of one MNIST
  // classification under TensorFlow:
  //   branches 2.27e9, branch-misses 6.25e7, bus-cycles 6.20e8,
  //   cache-misses 8.36e6, cache-references 6.34e7, cycles 1.62e10,
  //   instructions 1.21e10, ref-cycles 1.60e10.
  // Noise magnitudes set the t-value regimes (see file comment).
  std::array<EnvironmentSpec, kNumEvents> env{};
  env[static_cast<std::size_t>(HpcEvent::kBranches)] = {2.0e6, 5000.0};
  env[static_cast<std::size_t>(HpcEvent::kBranchMisses)] = {6.0e4, 600.0};
  env[static_cast<std::size_t>(HpcEvent::kBusCycles)] = {6.0e5, 2000.0};
  env[static_cast<std::size_t>(HpcEvent::kCacheMisses)] = {7.0e3, 8.0};
  env[static_cast<std::size_t>(HpcEvent::kCacheReferences)] = {5.5e4, 800.0};
  env[static_cast<std::size_t>(HpcEvent::kCycles)] = {1.4e7, 5.0e4};
  env[static_cast<std::size_t>(HpcEvent::kInstructions)] = {1.0e7, 2.0e4};
  env[static_cast<std::size_t>(HpcEvent::kRefCycles)] = {1.38e7, 5.0e4};
  return env;
}

std::array<EnvironmentSpec, kNumEvents>
SimulatedPmuConfig::large_workload_environment() {
  // ~2.4x the default workload runtime: bases and jitter scale with the
  // time the framework/OS spends around the classification.
  std::array<EnvironmentSpec, kNumEvents> env{};
  env[static_cast<std::size_t>(HpcEvent::kBranches)] = {4.8e6, 26000.0};
  env[static_cast<std::size_t>(HpcEvent::kBranchMisses)] = {1.4e5, 1500.0};
  env[static_cast<std::size_t>(HpcEvent::kBusCycles)] = {1.4e6, 5000.0};
  env[static_cast<std::size_t>(HpcEvent::kCacheMisses)] = {1.7e4, 120.0};
  env[static_cast<std::size_t>(HpcEvent::kCacheReferences)] = {1.3e5, 2000.0};
  env[static_cast<std::size_t>(HpcEvent::kCycles)] = {3.4e7, 1.2e5};
  env[static_cast<std::size_t>(HpcEvent::kInstructions)] = {2.4e7, 5.0e4};
  env[static_cast<std::size_t>(HpcEvent::kRefCycles)] = {3.3e7, 1.2e5};
  return env;
}

std::array<EnvironmentSpec, kNumEvents>
SimulatedPmuConfig::no_environment() {
  return {};
}

CounterSample assemble_workload_counts(const uarch::CoreModelConfig& core,
                                       const ArchCounts& counts) {
  CounterSample s;
  const std::uint64_t instructions =
      counts.loads + counts.stores + counts.branches + counts.retired;
  uarch::CoreCounts cc;
  cc.instructions = instructions;
  cc.memory_cycles = counts.memory_cycles;
  cc.mispredicts = counts.mispredicts;
  const uarch::DerivedCycles cycles = derive_cycles(core, cc);

  s[HpcEvent::kBranches] = counts.branches;
  s[HpcEvent::kBranchMisses] = counts.mispredicts;
  s[HpcEvent::kBusCycles] = cycles.bus_cycles;
  s[HpcEvent::kCacheMisses] = counts.llc_misses;
  s[HpcEvent::kCacheReferences] = counts.llc_references;
  s[HpcEvent::kCycles] = cycles.cycles;
  s[HpcEvent::kInstructions] = instructions;
  s[HpcEvent::kRefCycles] = cycles.ref_cycles;
  return s;
}

void apply_environment(CounterSample& sample,
                       const std::array<EnvironmentSpec, kNumEvents>& specs,
                       util::Rng& rng) {
  for (HpcEvent e : all_events()) {
    const auto& env = specs[static_cast<std::size_t>(e)];
    if (env.base == 0.0 && env.stddev == 0.0) continue;
    const double extra = rng.normal(env.base, env.stddev);
    if (extra > 0.0)
      sample[e] += static_cast<std::uint64_t>(std::llround(extra));
  }
}

SimulatedPmu::SimulatedPmu(SimulatedPmuConfig config)
    : config_(std::move(config)),
      hierarchy_(config_.hierarchy),
      predictor_(uarch::make_predictor(config_.predictor)),
      noise_rng_(config_.noise_seed),
      pollution_rng_(config_.noise_seed ^ 0x901155ULL) {}

std::vector<HpcEvent> SimulatedPmu::supported_events() const {
  return {all_events().begin(), all_events().end()};
}

bool SimulatedPmu::set_measurement_key(std::uint64_t key) {
  measurement_key_ = key;
  return true;
}

void SimulatedPmu::start() {
  if (measurement_key_) {
    noise_rng_ = util::Rng(util::mix64(config_.noise_seed, *measurement_key_));
    pollution_rng_ = util::Rng(
        util::mix64(config_.noise_seed ^ 0x901155ULL, *measurement_key_));
  }
  running_ = true;
  loads_ = 0;
  stores_ = 0;
  retired_ = 0;
  structural_branches_ = 0;
  memory_cycles_ = 0;
  accesses_since_pollution_ = 0;
  hierarchy_.reset_stats();
  predictor_->reset_stats();
  if (config_.cold_start_per_measurement) {
    hierarchy_.flush_all();
    predictor_->flush();
    // A cold start is a fresh process image: the OS hands out frames in
    // first-touch order again.
    page_frames_.clear();
    next_frame_ = 0;
  }
}

void SimulatedPmu::stop() { running_ = false; }

std::uintptr_t SimulatedPmu::normalize(const void* addr) {
  const auto raw = reinterpret_cast<std::uintptr_t>(addr);
  if (trusted_canonical_) return raw;  // replay already normalized
  if (!config_.normalize_addresses) return raw;
  const std::uintptr_t page = raw >> kPageBits;
  auto [it, inserted] = page_frames_.try_emplace(page, next_frame_);
  if (inserted) ++next_frame_;
  return kNormalizedBase + (it->second << kPageBits) +
         (raw & kPageOffsetMask);
}

void SimulatedPmu::data_access(const void* addr, std::size_t bytes,
                               bool is_write) {
  if (!running_) return;
  const auto result = hierarchy_.access(normalize(addr), bytes, is_write);
  memory_cycles_ += result.cycles;
  if (config_.pollution_period != 0) {
    accesses_since_pollution_ += result.lines_touched;
    while (accesses_since_pollution_ >= config_.pollution_period) {
      accesses_since_pollution_ -= config_.pollution_period;
      hierarchy_.pollute(1, pollution_rng_);
    }
  }
}

void SimulatedPmu::load(const void* addr, std::size_t bytes) {
  if (!running_) return;
  ++loads_;
  data_access(addr, bytes, false);
}

void SimulatedPmu::store(const void* addr, std::size_t bytes) {
  if (!running_) return;
  ++stores_;
  data_access(addr, bytes, true);
}

void SimulatedPmu::branch(std::uintptr_t pc, bool taken) {
  if (!running_) return;
  predictor_->resolve(pc, taken);
}

void SimulatedPmu::structural_branches(std::uint64_t n) {
  if (!running_) return;
  // Loop back-edges: counted as retired branches, predicted perfectly by
  // any reasonable predictor after the first iteration.
  structural_branches_ += n;
}

void SimulatedPmu::retire(std::uint64_t n) {
  if (!running_) return;
  retired_ += n;
}

void SimulatedPmu::consume(const uarch::TraceBuffer& trace,
                           uarch::ReplayClass cls) {
  if (!running_)
    throw InvalidArgument(
        "SimulatedPmu::consume: start() the measurement first");
  // The canonical fast path is valid only when this trace is the first
  // memory activity of a cold, normalized measurement: its first-touch
  // ordinals then coincide with what normalize() would assign.
  const bool canonical = config_.cold_start_per_measurement &&
                         config_.normalize_addresses && loads_ == 0 &&
                         stores_ == 0 && page_frames_.empty();
  if (canonical) {
    trusted_canonical_ = true;
    try {
      trace.replay(*this, cls, uarch::ReplayAddressing::kCanonical);
    } catch (...) {
      trusted_canonical_ = false;
      throw;
    }
    trusted_canonical_ = false;
  } else {
    trace.replay(*this, cls, uarch::ReplayAddressing::kSessionStable);
  }
}

CounterSample SimulatedPmu::measure_trace(const uarch::TraceBuffer& trace,
                                          uarch::ReplayClass cls) {
  start();
  consume(trace, cls);
  stop();
  return read();
}

CounterSample SimulatedPmu::workload_counts() const {
  const auto& bp = predictor_->stats();
  ArchCounts counts;
  counts.loads = loads_;
  counts.stores = stores_;
  counts.retired = retired_;
  counts.branches = bp.branches + structural_branches_;
  counts.mispredicts = bp.mispredicts;
  counts.memory_cycles = memory_cycles_;
  counts.llc_references = hierarchy_.last_level_references();
  counts.llc_misses = hierarchy_.last_level_misses();
  return assemble_workload_counts(config_.core, counts);
}

CounterSample SimulatedPmu::read() {
  if (running_)
    throw InvalidArgument("SimulatedPmu::read: stop() the measurement first");
  CounterSample s = workload_counts();
  apply_environment(s, config_.environment, noise_rng_);
  return s;
}

}  // namespace sce::hpc
