// Real Linux perf_event backend.
//
// Measures the calling process's own hardware events through
// perf_event_open(2) — the programmatic equivalent of the paper's
// `perf stat -e <event> -p <pid>`.  On hosts without a PMU (containers,
// most VMs) or with restrictive perf_event_paranoid, probe() reports the
// backend unavailable and the evaluator falls back to the simulated PMU.
#pragma once

#include <string>
#include <vector>

#include "hpc/counter_provider.hpp"

namespace sce::hpc {

class PerfEventBackend final : public CounterProvider {
 public:
  /// Opens one counter per supported event; throws Unsupported if no
  /// hardware event can be opened at all.
  PerfEventBackend();
  ~PerfEventBackend() override;

  PerfEventBackend(const PerfEventBackend&) = delete;
  PerfEventBackend& operator=(const PerfEventBackend&) = delete;

  std::string name() const override { return "perf-event"; }
  std::vector<HpcEvent> supported_events() const override;
  void start() override;
  void stop() override;
  CounterSample read() override;

  /// True if at least one hardware counter can be opened on this host.
  static bool probe();
  /// Human-readable explanation of the last probe failure ("" if ok).
  static std::string probe_error();

 private:
  struct Counter {
    HpcEvent event;
    int fd = -1;
  };
  std::vector<Counter> counters_;
};

}  // namespace sce::hpc
