// Real Linux perf_event backend.
//
// Measures the calling process's own hardware events through
// perf_event_open(2) — the programmatic equivalent of the paper's
// `perf stat -e <event> -p <pid>`.  On hosts without a PMU (containers,
// most VMs) or with restrictive perf_event_paranoid, probe() reports the
// backend unavailable and the evaluator falls back to the simulated PMU.
#pragma once

#include <string>
#include <vector>

#include "hpc/counter_provider.hpp"

namespace sce::hpc {

class PerfEventBackend final : public CounterProvider {
 public:
  /// Opens one counter per supported event; throws Unsupported if no
  /// hardware event can be opened at all.
  PerfEventBackend();
  ~PerfEventBackend() override;

  PerfEventBackend(const PerfEventBackend&) = delete;
  PerfEventBackend& operator=(const PerfEventBackend&) = delete;

  std::string name() const override { return "perf-event"; }
  std::vector<HpcEvent> supported_events() const override;
  void start() override;
  void stop() override;
  /// Reads every open counter.  A read interrupted by a signal is retried
  /// (EINTR); a read that still fails or comes back short marks the event
  /// missing in the returned sample (CounterSample::has is false) and is
  /// recorded in read_failures() — downstream validation can then
  /// distinguish "event dropped this sample" from "event never supported".
  CounterSample read() override;

  /// Cumulative failed reads per event since construction.
  std::size_t read_failures(HpcEvent event) const;
  /// True if `event` was time-multiplexed (running < enabled) in the most
  /// recent read(); its value was scaled by enabled/running, as the
  /// kernel's rotation makes raw counts incomparable across samples.
  bool was_multiplexed(HpcEvent event) const;
  /// Cumulative multiplexed reads per event since construction.
  std::size_t multiplexed_reads(HpcEvent event) const;

  /// True if at least one hardware counter can be opened on this host.
  static bool probe();
  /// Human-readable explanation of the last probe failure ("" if ok).
  static std::string probe_error();

 private:
  struct Counter {
    HpcEvent event;
    int fd = -1;
  };
  std::vector<Counter> counters_;
  std::array<std::size_t, kNumEvents> read_failures_{};
  std::array<std::size_t, kNumEvents> multiplexed_reads_{};
  std::array<bool, kNumEvents> last_multiplexed_{};
};

}  // namespace sce::hpc
