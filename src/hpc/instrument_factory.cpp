#include "hpc/instrument_factory.hpp"

#include "hpc/perf_backend.hpp"
#include "util/error.hpp"

namespace sce::hpc {

Instrument Instrument::adopt(std::unique_ptr<CounterProvider> provider,
                             std::unique_ptr<uarch::TraceSink> sink) {
  if (!provider || !sink)
    throw InvalidArgument("Instrument::adopt: null provider or sink");
  Instrument instrument;
  instrument.provider_ = provider.get();
  instrument.sink_ = sink.get();
  instrument.owned_provider_ = std::move(provider);
  instrument.owned_sink_ = std::move(sink);
  return instrument;
}

Instrument Instrument::borrow(CounterProvider& provider,
                              uarch::TraceSink& sink) {
  Instrument instrument;
  instrument.provider_ = &provider;
  instrument.sink_ = &sink;
  return instrument;
}

Instrument SimulatedPmuFactory::create(std::size_t shard,
                                       std::size_t num_shards) {
  (void)shard;
  (void)num_shards;
  return Instrument::adopt(std::make_unique<SimulatedPmu>(config_));
}

Instrument PerfEventFactory::create(std::size_t shard,
                                    std::size_t num_shards) {
  (void)shard;
  (void)num_shards;
  return Instrument::adopt(std::make_unique<PerfEventBackend>(),
                           std::make_unique<uarch::NullSink>());
}

Instrument SingleInstrumentFactory::create(std::size_t shard,
                                           std::size_t num_shards) {
  if (num_shards != 1 || shard != 0)
    throw InvalidArgument(
        "SingleInstrumentFactory: holds one caller-owned instrument and "
        "cannot mint per-shard copies; use a real factory for num_shards > "
        "1");
  return Instrument::borrow(provider_, sink_);
}

CallbackInstrumentFactory::CallbackInstrumentFactory(Minter minter,
                                                     std::string name)
    : minter_(std::move(minter)), name_(std::move(name)) {
  if (!minter_)
    throw InvalidArgument("CallbackInstrumentFactory: null minter");
}

Instrument CallbackInstrumentFactory::create(std::size_t shard,
                                             std::size_t num_shards) {
  return minter_(shard, num_shards);
}

}  // namespace sce::hpc
