// Instrument minting for (sharded) acquisition.
//
// An Instrument pairs the two halves of a measurement rig: the
// CounterProvider that is started/stopped/read around each
// classification, and the TraceSink the instrumented kernels write
// into.  For the SimulatedPmu both halves are the same object; for a
// real PMU the sink is a NullSink (the hardware observes the execution
// directly, no software trace is needed).
//
// The sharded campaign runtime never receives a hand-wired
// provider/sink pair; it receives an InstrumentFactory and mints one
// Instrument per shard, so every shard owns an independent provider
// (independent microarchitectural state, independent RNG streams,
// per-thread perf sessions) and no provider is ever shared across
// threads.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "hpc/counter_provider.hpp"
#include "hpc/simulated_pmu.hpp"
#include "uarch/trace.hpp"

namespace sce::hpc {

/// One shard's measurement rig.  May own its parts (minted fresh by a
/// factory) or borrow caller-owned ones (single-shard adapters); either
/// way the provider and sink stay valid for the Instrument's lifetime.
class Instrument {
 public:
  /// Adopt an object that is both provider and sink (e.g. SimulatedPmu).
  template <typename ProviderAndSink>
  static Instrument adopt(std::unique_ptr<ProviderAndSink> both) {
    Instrument instrument;
    instrument.provider_ = both.get();
    instrument.sink_ = both.get();
    instrument.owned_provider_ = std::move(both);
    return instrument;
  }

  /// Adopt a separately owned provider and sink.
  static Instrument adopt(std::unique_ptr<CounterProvider> provider,
                          std::unique_ptr<uarch::TraceSink> sink);

  /// Borrow caller-owned parts; the caller keeps them alive for as long
  /// as the Instrument is used.
  static Instrument borrow(CounterProvider& provider, uarch::TraceSink& sink);

  Instrument(Instrument&&) = default;
  Instrument& operator=(Instrument&&) = default;

  CounterProvider& provider() const { return *provider_; }
  uarch::TraceSink& sink() const { return *sink_; }

 private:
  Instrument() = default;

  std::unique_ptr<CounterProvider> owned_provider_;
  std::unique_ptr<uarch::TraceSink> owned_sink_;
  CounterProvider* provider_ = nullptr;
  uarch::TraceSink* sink_ = nullptr;
};

/// Mints one independent Instrument per shard.  create() is called from
/// the coordinating thread, once per shard per run; the minted
/// instruments are then used concurrently, one per worker.
class InstrumentFactory {
 public:
  virtual ~InstrumentFactory() = default;
  virtual std::string name() const = 0;
  /// Mint the instrument shard `shard` (0-based) of `num_shards` will own
  /// for the whole run.  Every shard's provider must report the same
  /// supported_events() set — the campaign rejects heterogeneous rigs.
  virtual Instrument create(std::size_t shard, std::size_t num_shards) = 0;
};

/// One fresh SimulatedPmu per shard, all from the same config.  Identical
/// configs are deliberate: under keyed measurements the noise streams are
/// derived per measurement slot, not per provider instance, so shards
/// need no per-shard seed plumbing to stay both independent and
/// bit-reproducible.
class SimulatedPmuFactory final : public InstrumentFactory {
 public:
  explicit SimulatedPmuFactory(SimulatedPmuConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "simulated-pmu"; }
  Instrument create(std::size_t shard, std::size_t num_shards) override;

  const SimulatedPmuConfig& config() const { return config_; }

 private:
  SimulatedPmuConfig config_;
};

/// One PerfEventBackend session per shard, paired with a NullSink.  Each
/// worker thread gets its own perf file descriptors, which is exactly
/// what perf_event_open requires for per-thread counting.  Throws
/// Unsupported from create() where the host exposes no PMU.
class PerfEventFactory final : public InstrumentFactory {
 public:
  std::string name() const override { return "perf-event"; }
  Instrument create(std::size_t shard, std::size_t num_shards) override;
};

/// Adapts one caller-owned provider/sink pair to the factory interface.
/// Single-shard only: the one instrument cannot be handed to multiple
/// concurrent workers.
class SingleInstrumentFactory final : public InstrumentFactory {
 public:
  SingleInstrumentFactory(CounterProvider& provider, uarch::TraceSink& sink)
      : provider_(provider), sink_(sink) {}

  std::string name() const override { return provider_.name(); }
  /// Throws InvalidArgument when num_shards != 1.
  Instrument create(std::size_t shard, std::size_t num_shards) override;

 private:
  CounterProvider& provider_;
  uarch::TraceSink& sink_;
};

/// Mints instruments through a callback — for tests and tools that need
/// arbitrary per-shard provider stacks (fault injection over a pure
/// provider, multiplexing over a simulated PMU, ...).
class CallbackInstrumentFactory final : public InstrumentFactory {
 public:
  using Minter = std::function<Instrument(std::size_t shard,
                                          std::size_t num_shards)>;
  explicit CallbackInstrumentFactory(Minter minter,
                                     std::string name = "callback");

  std::string name() const override { return name_; }
  Instrument create(std::size_t shard, std::size_t num_shards) override;

 private:
  Minter minter_;
  std::string name_;
};

}  // namespace sce::hpc
