#include "hpc/counter_provider.hpp"

#include <sstream>

#include "util/format.hpp"

namespace sce::hpc {

std::size_t CounterSample::present_count() const {
  std::size_t n = 0;
  for (HpcEvent e : all_events())
    if (has(e)) ++n;
  return n;
}

std::vector<HpcEvent> CounterSample::missing_events() const {
  std::vector<HpcEvent> missing;
  for (HpcEvent e : all_events())
    if (!has(e)) missing.push_back(e);
  return missing;
}

std::string CounterSample::to_perf_stat_string() const {
  std::ostringstream os;
  for (HpcEvent e : all_events()) {
    os << util::pad_left(
              has(e) ? util::group_indian((*this)[e]) : "<not counted>", 20)
       << "      " << to_string(e) << '\n';
  }
  return os.str();
}

}  // namespace sce::hpc
