#include "hpc/counter_provider.hpp"

#include <sstream>

#include "util/format.hpp"

namespace sce::hpc {

std::string CounterSample::to_perf_stat_string() const {
  std::ostringstream os;
  for (HpcEvent e : all_events()) {
    os << util::pad_left(util::group_indian((*this)[e]), 20) << "      "
       << to_string(e) << '\n';
  }
  return os.str();
}

}  // namespace sce::hpc
