// Simulated Performance Monitoring Unit.
//
// Substitutes for the Intel PMU the paper reads through `perf`: the
// instrumented CNN kernels stream their dynamic trace into this sink,
// which drives the cache hierarchy, branch predictor and TLB models and
// derives the same eight counters `perf stat` reports.
//
// An EnvironmentModel adds, per measurement, the contribution of
// everything the real evaluator cannot separate from the workload —
// framework/runtime code, other processes, OS jitter.  Each event gets a
// fixed base count plus Gaussian noise.  The defaults are calibrated so
// that the *ratios* between events match the paper's Figure 2(b) dump
// (≈1000x smaller absolute scale, since the simulated workload is a
// from-scratch kernel rather than a full TensorFlow stack) and so that
// noise magnitudes reproduce the paper's t-value regimes: cache-misses
// strongly input-dependent, branches marginally so.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>

#include "hpc/counter_provider.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/core_model.hpp"
#include "uarch/hierarchy.hpp"
#include "uarch/trace.hpp"
#include "uarch/trace_buffer.hpp"
#include "util/rng.hpp"

namespace sce::hpc {

/// Fixed base count + Gaussian jitter added per measurement per event.
struct EnvironmentSpec {
  double base = 0.0;
  double stddev = 0.0;
};

inline bool operator==(const EnvironmentSpec& a, const EnvironmentSpec& b) {
  return a.base == b.base && a.stddev == b.stddev;
}
inline bool operator!=(const EnvironmentSpec& a, const EnvironmentSpec& b) {
  return !(a == b);
}

struct SimulatedPmuConfig {
  uarch::HierarchyConfig hierarchy{};
  uarch::PredictorKind predictor = uarch::PredictorKind::kGShare;
  uarch::CoreModelConfig core{};

  /// Flush caches/TLB/predictor when a measurement starts — models each
  /// classification running against a cold microarchitectural state (a
  /// fresh `perf stat` invocation around one classification, with the
  /// intervening work of other tenants evicting the model's footprint).
  bool cold_start_per_measurement = true;

  /// Canonical first-touch page mapping: each distinct 4 KiB page of the
  /// traced addresses is assigned a frame in first-touch order, mimicking
  /// an OS physical allocator handing a fresh process consecutive frames
  /// (caches below L1 are physically indexed on real parts).  This makes
  /// the simulated counters a pure function of the access *sequence* —
  /// independent of ASLR and of heap-layout drift across measurements —
  /// which is what keeps experiments reproducible.  The mapping resets
  /// whenever the caches are cold-started.
  bool normalize_addresses = true;

  /// If nonzero, evict one random line from every level each time this
  /// many line accesses complete (models co-tenant cache interference).
  std::size_t pollution_period = 0;

  /// Per-event environment contribution (see file comment). Indexed by
  /// HpcEvent order.
  std::array<EnvironmentSpec, kNumEvents> environment =
      default_environment();
  std::uint64_t noise_seed = 99;

  static std::array<EnvironmentSpec, kNumEvents> default_environment();
  /// Environment calibrated for ~5M-instruction workloads (e.g. the
  /// CIFAR-scale model): the runtime/framework contribution and its jitter
  /// grow with execution time, so both bases and noise are scaled up.
  static std::array<EnvironmentSpec, kNumEvents> large_workload_environment();
  /// Zero environment: counters reflect the workload alone (used by unit
  /// tests and the microarchitecture ablations).
  static std::array<EnvironmentSpec, kNumEvents> no_environment();
};

/// Field-wise equality; the sweep engine uses it to deduplicate grid
/// points that drive identical models.
inline bool operator==(const SimulatedPmuConfig& a,
                       const SimulatedPmuConfig& b) {
  return a.hierarchy == b.hierarchy && a.predictor == b.predictor &&
         a.core == b.core &&
         a.cold_start_per_measurement == b.cold_start_per_measurement &&
         a.normalize_addresses == b.normalize_addresses &&
         a.pollution_period == b.pollution_period &&
         a.environment == b.environment && a.noise_seed == b.noise_seed;
}
inline bool operator!=(const SimulatedPmuConfig& a,
                       const SimulatedPmuConfig& b) {
  return !(a == b);
}

/// Architectural totals of one measurement, as accumulated by a live
/// SimulatedPmu or assembled from per-component trace replays.
struct ArchCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t retired = 0;
  /// Conditional + structural branches.
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t memory_cycles = 0;
  std::uint64_t llc_references = 0;
  std::uint64_t llc_misses = 0;
};

/// The one place the eight perf events are derived from architectural
/// counts.  SimulatedPmu::workload_counts() routes through this, and the
/// sweep engine calls it directly when it composes a sample from a
/// memory-class replay and a branch-class replay — keeping the two paths
/// bit-identical by construction.
CounterSample assemble_workload_counts(const uarch::CoreModelConfig& core,
                                       const ArchCounts& counts);

/// The environment overlay applied by SimulatedPmu::read(): one
/// truncated-normal draw per nonzero-spec event, in all_events() order,
/// from `rng`.  Exposed so replay drivers can reproduce a keyed
/// measurement's noise with Rng(mix64(noise_seed, key)).
void apply_environment(CounterSample& sample,
                       const std::array<EnvironmentSpec, kNumEvents>& specs,
                       util::Rng& rng);

class SimulatedPmu final : public CounterProvider, public uarch::TraceSink {
 public:
  explicit SimulatedPmu(SimulatedPmuConfig config = {});

  // --- CounterProvider ---
  std::string name() const override { return "simulated-pmu"; }
  std::vector<HpcEvent> supported_events() const override;
  void start() override;
  void stop() override;
  CounterSample read() override;
  /// Keyed mode: the next start() reseeds the environment-noise and
  /// pollution streams from mix64(noise_seed, key), making the
  /// measurement's stochastic overlay a pure function of the key.  The
  /// key persists until replaced, so a retried measurement with a fresh
  /// key draws fresh (but still reproducible) noise.
  bool set_measurement_key(std::uint64_t key) override;

  // --- TraceSink (fed by the instrumented kernels) ---
  void load(const void* addr, std::size_t bytes) override;
  void store(const void* addr, std::size_t bytes) override;
  void branch(std::uintptr_t pc, bool taken) override;
  void structural_branches(std::uint64_t n) override;
  void retire(std::uint64_t n) override;

  /// The trace sink kernels should write into (this object itself).
  uarch::TraceSink& sink() { return *this; }

  // --- Trace replay ----------------------------------------------------

  /// Feed a recorded trace (or one component class of it) into the
  /// running measurement, as if the kernels had streamed it live.  When
  /// this measurement is cold-started with address normalization on — the
  /// reproducibility default — the buffer's canonical addresses are
  /// exactly what normalize() would produce, so the per-access page hash
  /// is skipped; otherwise the trace replays in its session-stable
  /// address space through the ordinary normalization path.  Either way
  /// the resulting counts are bit-identical to the live run that was
  /// recorded (tests/hpc/replay_test.cpp).  One trace per measurement,
  /// mirroring the campaign's one-classification-per-measurement shape.
  void consume(const uarch::TraceBuffer& trace,
               uarch::ReplayClass cls = uarch::ReplayClass::kAll);

  /// Convenience: start(), consume(trace), stop(), read() — one full
  /// replayed measurement under the current measurement key.
  CounterSample measure_trace(
      const uarch::TraceBuffer& trace,
      uarch::ReplayClass cls = uarch::ReplayClass::kAll);

  /// Architectural counts of the current/last measurement, without the
  /// environment overlay (for tests and ablations).
  CounterSample workload_counts() const;

  /// Hierarchy latency accumulated by the current/last measurement (the
  /// memory_cycles input to the core event model); exposed so component
  /// replays can be composed via assemble_workload_counts.
  std::uint64_t memory_cycles() const { return memory_cycles_; }

  uarch::MemoryHierarchy& hierarchy() { return hierarchy_; }
  uarch::BranchPredictor& predictor() { return *predictor_; }

 private:
  std::uintptr_t normalize(const void* addr);
  void data_access(const void* addr, std::size_t bytes, bool is_write);

  SimulatedPmuConfig config_;
  uarch::MemoryHierarchy hierarchy_;
  std::unique_ptr<uarch::BranchPredictor> predictor_;
  util::Rng noise_rng_;
  util::Rng pollution_rng_;
  std::optional<std::uint64_t> measurement_key_;

  bool running_ = false;
  /// Set while consume() replays a canonical-address trace into a cold
  /// normalized measurement: the addresses already are the normalized
  /// form, so normalize() passes them through untouched.
  bool trusted_canonical_ = false;
  std::unordered_map<std::uintptr_t, std::uintptr_t> page_frames_;
  std::uintptr_t next_frame_ = 0;
  std::size_t accesses_since_pollution_ = 0;

  // Counts accumulated during the active measurement.
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t structural_branches_ = 0;
  std::uint64_t memory_cycles_ = 0;
};

}  // namespace sce::hpc
