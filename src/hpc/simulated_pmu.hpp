// Simulated Performance Monitoring Unit.
//
// Substitutes for the Intel PMU the paper reads through `perf`: the
// instrumented CNN kernels stream their dynamic trace into this sink,
// which drives the cache hierarchy, branch predictor and TLB models and
// derives the same eight counters `perf stat` reports.
//
// An EnvironmentModel adds, per measurement, the contribution of
// everything the real evaluator cannot separate from the workload —
// framework/runtime code, other processes, OS jitter.  Each event gets a
// fixed base count plus Gaussian noise.  The defaults are calibrated so
// that the *ratios* between events match the paper's Figure 2(b) dump
// (≈1000x smaller absolute scale, since the simulated workload is a
// from-scratch kernel rather than a full TensorFlow stack) and so that
// noise magnitudes reproduce the paper's t-value regimes: cache-misses
// strongly input-dependent, branches marginally so.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>

#include "hpc/counter_provider.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/core_model.hpp"
#include "uarch/hierarchy.hpp"
#include "uarch/trace.hpp"
#include "util/rng.hpp"

namespace sce::hpc {

/// Fixed base count + Gaussian jitter added per measurement per event.
struct EnvironmentSpec {
  double base = 0.0;
  double stddev = 0.0;
};

struct SimulatedPmuConfig {
  uarch::HierarchyConfig hierarchy{};
  uarch::PredictorKind predictor = uarch::PredictorKind::kGShare;
  uarch::CoreModelConfig core{};

  /// Flush caches/TLB/predictor when a measurement starts — models each
  /// classification running against a cold microarchitectural state (a
  /// fresh `perf stat` invocation around one classification, with the
  /// intervening work of other tenants evicting the model's footprint).
  bool cold_start_per_measurement = true;

  /// Canonical first-touch page mapping: each distinct 4 KiB page of the
  /// traced addresses is assigned a frame in first-touch order, mimicking
  /// an OS physical allocator handing a fresh process consecutive frames
  /// (caches below L1 are physically indexed on real parts).  This makes
  /// the simulated counters a pure function of the access *sequence* —
  /// independent of ASLR and of heap-layout drift across measurements —
  /// which is what keeps experiments reproducible.  The mapping resets
  /// whenever the caches are cold-started.
  bool normalize_addresses = true;

  /// If nonzero, evict one random line from every level each time this
  /// many line accesses complete (models co-tenant cache interference).
  std::size_t pollution_period = 0;

  /// Per-event environment contribution (see file comment). Indexed by
  /// HpcEvent order.
  std::array<EnvironmentSpec, kNumEvents> environment =
      default_environment();
  std::uint64_t noise_seed = 99;

  static std::array<EnvironmentSpec, kNumEvents> default_environment();
  /// Environment calibrated for ~5M-instruction workloads (e.g. the
  /// CIFAR-scale model): the runtime/framework contribution and its jitter
  /// grow with execution time, so both bases and noise are scaled up.
  static std::array<EnvironmentSpec, kNumEvents> large_workload_environment();
  /// Zero environment: counters reflect the workload alone (used by unit
  /// tests and the microarchitecture ablations).
  static std::array<EnvironmentSpec, kNumEvents> no_environment();
};

class SimulatedPmu final : public CounterProvider, public uarch::TraceSink {
 public:
  explicit SimulatedPmu(SimulatedPmuConfig config = {});

  // --- CounterProvider ---
  std::string name() const override { return "simulated-pmu"; }
  std::vector<HpcEvent> supported_events() const override;
  void start() override;
  void stop() override;
  CounterSample read() override;
  /// Keyed mode: the next start() reseeds the environment-noise and
  /// pollution streams from mix64(noise_seed, key), making the
  /// measurement's stochastic overlay a pure function of the key.  The
  /// key persists until replaced, so a retried measurement with a fresh
  /// key draws fresh (but still reproducible) noise.
  bool set_measurement_key(std::uint64_t key) override;

  // --- TraceSink (fed by the instrumented kernels) ---
  void load(const void* addr, std::size_t bytes) override;
  void store(const void* addr, std::size_t bytes) override;
  void branch(std::uintptr_t pc, bool taken) override;
  void structural_branches(std::uint64_t n) override;
  void retire(std::uint64_t n) override;

  /// The trace sink kernels should write into (this object itself).
  uarch::TraceSink& sink() { return *this; }

  /// Architectural counts of the current/last measurement, without the
  /// environment overlay (for tests and ablations).
  CounterSample workload_counts() const;

  uarch::MemoryHierarchy& hierarchy() { return hierarchy_; }
  uarch::BranchPredictor& predictor() { return *predictor_; }

 private:
  std::uintptr_t normalize(const void* addr);
  void data_access(const void* addr, std::size_t bytes, bool is_write);

  SimulatedPmuConfig config_;
  uarch::MemoryHierarchy hierarchy_;
  std::unique_ptr<uarch::BranchPredictor> predictor_;
  util::Rng noise_rng_;
  util::Rng pollution_rng_;
  std::optional<std::uint64_t> measurement_key_;

  bool running_ = false;
  std::unordered_map<std::uintptr_t, std::uintptr_t> page_frames_;
  std::uintptr_t next_frame_ = 0;
  std::size_t accesses_since_pollution_ = 0;

  // Counts accumulated during the active measurement.
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t structural_branches_ = 0;
  std::uint64_t memory_cycles_ = 0;
};

}  // namespace sce::hpc
