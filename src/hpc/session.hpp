// RAII measurement session: counts the hardware events of a callable.
#pragma once

#include <functional>

#include "hpc/counter_provider.hpp"

namespace sce::hpc {

/// Runs `work` between start() and stop() on `provider` and returns the
/// counter sample.  Exceptions from `work` propagate after the counters
/// are stopped.
CounterSample measure(CounterProvider& provider,
                      const std::function<void()>& work);

/// RAII variant for scopes that cannot be expressed as a callable.
class ScopedMeasurement {
 public:
  explicit ScopedMeasurement(CounterProvider& provider) : provider_(provider) {
    provider_.start();
  }
  ~ScopedMeasurement() {
    if (stopped_) return;
    // A provider's stop() may itself fail (fault injection, a dying
    // perf fd); swallow it — throwing from a destructor mid-unwind
    // would terminate the process.
    try {
      provider_.stop();
    } catch (...) {
    }
  }
  ScopedMeasurement(const ScopedMeasurement&) = delete;
  ScopedMeasurement& operator=(const ScopedMeasurement&) = delete;

  /// Stop and read the counters.
  CounterSample finish() {
    provider_.stop();
    stopped_ = true;
    return provider_.read();
  }

 private:
  CounterProvider& provider_;
  bool stopped_ = false;
};

}  // namespace sce::hpc
