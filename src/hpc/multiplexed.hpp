// Counter multiplexing model.
//
// The paper (Section 3) notes that "the perf tool is limited to observing
// a maximum of 6 to 8 hardware events in parallel because of the
// restrictions in the number of built-in HPC registers".  When more
// events are requested than the PMU has counters, the kernel time-slices
// the counter set across the measurement and *scales* each event's count
// by measured_time/enabled_time — introducing estimation noise that an
// evaluator must budget for.
//
// MultiplexedPmu wraps any CounterProvider and reproduces that behaviour:
// per measurement only `hardware_counters` of the requested events are
// "scheduled" per time slice (rotating round-robin, as the kernel does),
// and unscheduled slices of an event are reconstructed by scaling,
// with multiplicative estimation noise proportional to the unobserved
// fraction.
#pragma once

#include <memory>

#include "hpc/counter_provider.hpp"
#include "util/rng.hpp"

namespace sce::hpc {

struct MultiplexConfig {
  /// Number of events countable simultaneously (Intel: 4-8 programmable).
  std::size_t hardware_counters = 4;
  /// Time slices per measurement over which the counter set rotates.
  std::size_t slices_per_measurement = 8;
  /// Relative stddev of the per-slice extrapolation error.
  double extrapolation_noise = 0.02;
  std::uint64_t seed = 41;
};

class MultiplexedPmu final : public CounterProvider {
 public:
  /// Does not take ownership of `inner`.
  MultiplexedPmu(CounterProvider& inner, MultiplexConfig config = {});

  std::string name() const override { return "multiplexed"; }
  std::vector<HpcEvent> supported_events() const override;
  void start() override;
  void stop() override;
  CounterSample read() override;
  /// Keyed mode: derives the extrapolation-noise stream and the rotation
  /// offset of the next measurement from (seed, key) instead of carrying
  /// them over from the previous measurement, and forwards the key to the
  /// wrapped provider.  Always returns true — the mux's own randomness is
  /// keyable even when the inner provider's is not.
  bool set_measurement_key(std::uint64_t key) override;

  /// Fraction of the measurement during which `event` was scheduled on a
  /// hardware counter in the most recent measurement.
  double scheduled_fraction(HpcEvent event) const;

 private:
  CounterProvider& inner_;
  MultiplexConfig config_;
  util::Rng rng_;
  std::size_t rotation_ = 0;
  std::array<double, kNumEvents> last_fraction_{};
};

}  // namespace sce::hpc
