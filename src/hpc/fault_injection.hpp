// Fault-injecting CounterProvider decorator.
//
// Reproduces, deterministically, the failure modes of real HPC
// acquisition on a shared host: transient syscall failures on
// start/stop/read, events missing from individual samples (counter not
// scheduled / read failed), outlier spikes from context switches and
// interrupts landing inside a measurement, and an event dying
// permanently mid-campaign (e.g. a PMU watchdog claiming a counter).
//
// All randomness comes from one seeded Rng, so any observed failure
// sequence can be replayed exactly — the decorator doubles as the
// permanent test harness for the fault-tolerant acquisition path in
// core::run_campaign and core::OnlineEvaluator.
#pragma once

#include <optional>
#include <string>

#include "hpc/counter_provider.hpp"
#include "util/rng.hpp"

namespace sce::hpc {

struct FaultConfig {
  /// Probability that a start()/stop()/read() call throws
  /// TransientFailure instead of doing its job.
  double transient_rate = 0.0;
  /// Which operations the transient rate applies to (tests often want to
  /// fail exactly one of them).
  bool faulty_start = true;
  bool faulty_stop = true;
  bool faulty_read = true;
  /// Per-event probability that a read() omits the event from the sample.
  double event_drop_rate = 0.0;
  /// Probability that a read() returns a polluted sample: every present
  /// event is inflated by `outlier_factor` (a context switch perturbs the
  /// whole counter set at once).
  double outlier_rate = 0.0;
  /// Multiplier applied to a polluted sample's values (value *= 1+factor).
  double outlier_factor = 25.0;
  /// If set, this event disappears from every sample once
  /// `permanent_fail_after` successful reads have been delivered —
  /// a counter lost for good mid-campaign.
  std::optional<HpcEvent> permanent_fail_event;
  std::size_t permanent_fail_after = 0;
  /// If > 0, the whole instrument dies after this many successful reads:
  /// every subsequent start()/stop()/read() throws TransientFailure
  /// until the caller's retry budget concedes the rig is gone.  This is
  /// *instance* state, not keyed randomness — the same measurement
  /// retried on a healthy instrument succeeds, which is exactly the
  /// contract the campaign's shard failover relies on.
  std::size_t die_after_reads = 0;
  std::uint64_t seed = 0xFA17;
};

/// Injection bookkeeping, exposed so tests can assert on exactly what
/// happened (and so the decorator can double as a call-counting spy with
/// all fault rates at zero).
struct FaultStats {
  std::size_t start_calls = 0;
  std::size_t stop_calls = 0;
  std::size_t read_calls = 0;
  std::size_t transient_failures = 0;
  std::size_t events_dropped = 0;
  std::size_t outliers_injected = 0;
  /// start() minus stop() deliveries that reached the inner provider;
  /// a leak-free consumer leaves this at 0 between measurements.
  int running_depth = 0;
};

class FaultInjectingProvider final : public CounterProvider {
 public:
  /// Does not take ownership of `inner`.
  explicit FaultInjectingProvider(CounterProvider& inner,
                                  FaultConfig config = {});

  std::string name() const override { return "fault:" + inner_.name(); }
  std::vector<HpcEvent> supported_events() const override;
  void start() override;
  void stop() override;
  CounterSample read() override;
  /// Keyed mode: the injected-fault pattern of the next measurement
  /// becomes a pure function of (seed, key) — the same slot sees the same
  /// faults no matter which shard runs it or in what order.  The key is
  /// forwarded to the wrapped provider.  (The permanent-failure trip
  /// counter stays sequential: a counter dying after K reads is inherently
  /// per-instance state, not per-measurement randomness.)
  bool set_measurement_key(std::uint64_t key) override;

  const FaultStats& stats() const { return stats_; }
  /// True once the configured permanent event failure has tripped.
  bool permanent_failure_active() const;
  /// True once die_after_reads has tripped (the instrument is gone).
  bool dead() const;

 private:
  void maybe_throw(const char* op, bool enabled);
  void throw_if_dead(const char* op);

  CounterProvider& inner_;
  FaultConfig config_;
  util::Rng rng_;
  FaultStats stats_;
  std::size_t successful_reads_ = 0;
};

}  // namespace sce::hpc
