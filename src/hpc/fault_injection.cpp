#include "hpc/fault_injection.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sce::hpc {

FaultInjectingProvider::FaultInjectingProvider(CounterProvider& inner,
                                               FaultConfig config)
    : inner_(inner), config_(config), rng_(config.seed) {
  auto check_rate = [](double rate, const char* what) {
    if (rate < 0.0 || rate > 1.0)
      throw InvalidArgument(std::string("FaultInjectingProvider: ") + what +
                            " must be in [0, 1]");
  };
  check_rate(config_.transient_rate, "transient_rate");
  check_rate(config_.event_drop_rate, "event_drop_rate");
  check_rate(config_.outlier_rate, "outlier_rate");
  if (config_.outlier_factor < 0.0)
    throw InvalidArgument(
        "FaultInjectingProvider: outlier_factor must be >= 0");
}

std::vector<HpcEvent> FaultInjectingProvider::supported_events() const {
  return inner_.supported_events();
}

bool FaultInjectingProvider::set_measurement_key(std::uint64_t key) {
  rng_ = util::Rng(util::mix64(config_.seed, key));
  (void)inner_.set_measurement_key(key);
  return true;
}

bool FaultInjectingProvider::permanent_failure_active() const {
  return config_.permanent_fail_event.has_value() &&
         successful_reads_ >= config_.permanent_fail_after;
}

bool FaultInjectingProvider::dead() const {
  return config_.die_after_reads > 0 &&
         successful_reads_ >= config_.die_after_reads;
}

void FaultInjectingProvider::throw_if_dead(const char* op) {
  if (!dead()) return;
  ++stats_.transient_failures;
  throw TransientFailure(std::string("injected instrument death in ") + op +
                         " (" + inner_.name() + ")");
}

void FaultInjectingProvider::maybe_throw(const char* op, bool enabled) {
  if (!enabled) return;
  if (config_.transient_rate > 0.0 && rng_.chance(config_.transient_rate)) {
    ++stats_.transient_failures;
    throw TransientFailure(std::string("injected transient fault in ") +
                                 op + " (" + inner_.name() + ")");
  }
}

void FaultInjectingProvider::start() {
  ++stats_.start_calls;
  // The fault fires before the inner provider arms: a failed
  // perf_event ioctl leaves the counters untouched.
  throw_if_dead("start");
  maybe_throw("start", config_.faulty_start);
  inner_.start();
  ++stats_.running_depth;
}

void FaultInjectingProvider::stop() {
  ++stats_.stop_calls;
  throw_if_dead("stop");
  maybe_throw("stop", config_.faulty_stop);
  inner_.stop();
  --stats_.running_depth;
}

CounterSample FaultInjectingProvider::read() {
  ++stats_.read_calls;
  throw_if_dead("read");
  maybe_throw("read", config_.faulty_read);
  CounterSample sample = inner_.read();

  if (config_.outlier_rate > 0.0 && rng_.chance(config_.outlier_rate)) {
    ++stats_.outliers_injected;
    for (HpcEvent e : all_events()) {
      if (!sample.has(e)) continue;
      const double spiked = static_cast<double>(sample[e]) *
                            (1.0 + config_.outlier_factor);
      sample.set(e, static_cast<std::uint64_t>(std::llround(spiked)));
    }
  }

  if (config_.event_drop_rate > 0.0) {
    for (HpcEvent e : all_events()) {
      if (!sample.has(e)) continue;
      if (rng_.chance(config_.event_drop_rate)) {
        sample.drop(e);
        ++stats_.events_dropped;
      }
    }
  }

  if (permanent_failure_active() && sample.has(*config_.permanent_fail_event)) {
    sample.drop(*config_.permanent_fail_event);
    ++stats_.events_dropped;
  }

  ++successful_reads_;
  return sample;
}

}  // namespace sce::hpc
