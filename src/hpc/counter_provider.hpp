// Abstract access to hardware performance counters.
//
// Two implementations exist: SimulatedPmu (trace-driven microarchitectural
// models — always available) and PerfEventBackend (the real Linux
// perf_event interface — available where the host exposes a PMU).
// The evaluator core is written against this interface only.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hpc/events.hpp"

namespace sce::hpc {

/// One measurement: a value for each of the eight events.
class CounterSample {
 public:
  std::uint64_t& operator[](HpcEvent event) {
    return values_[static_cast<std::size_t>(event)];
  }
  std::uint64_t operator[](HpcEvent event) const {
    return values_[static_cast<std::size_t>(event)];
  }

  /// Render in `perf stat` style (Indian digit grouping, as the paper's
  /// Figure 2(b) shows).
  std::string to_perf_stat_string() const;

  const std::array<std::uint64_t, kNumEvents>& raw() const { return values_; }

 private:
  std::array<std::uint64_t, kNumEvents> values_{};
};

class CounterProvider {
 public:
  virtual ~CounterProvider() = default;

  virtual std::string name() const = 0;

  /// Events this provider can measure (the simulated PMU supports all;
  /// a real PMU may lack some).
  virtual std::vector<HpcEvent> supported_events() const = 0;

  /// Arm the counters; resets the previous measurement.
  virtual void start() = 0;
  /// Freeze the counters.
  virtual void stop() = 0;
  /// Read the frozen counters; valid after stop().
  virtual CounterSample read() = 0;
};

}  // namespace sce::hpc
