// Abstract access to hardware performance counters.
//
// Two implementations exist: SimulatedPmu (trace-driven microarchitectural
// models — always available) and PerfEventBackend (the real Linux
// perf_event interface — available where the host exposes a PMU).
// The evaluator core is written against this interface only.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hpc/events.hpp"

namespace sce::hpc {

/// One measurement: a value for each of the eight events, plus a presence
/// mask distinguishing "counted as 0" from "not counted at all" (a real
/// PMU read can fail per-event; `perf stat` prints `<not counted>`).
///
/// A default-constructed sample reports every event present (the
/// historical behaviour — the simulated PMU always counts all eight);
/// providers with partial coverage call drop() for the events they could
/// not measure, and fault-aware consumers check has() before using a
/// value.
class CounterSample {
 public:
  /// A sample with every event marked missing; providers that fill
  /// events one by one (e.g. the perf backend) start from this.
  static CounterSample all_missing() {
    CounterSample s;
    s.present_ = 0;
    return s;
  }

  /// Mutable access; does NOT change the presence mask (use set() when
  /// building a partial sample).
  std::uint64_t& operator[](HpcEvent event) {
    return values_[static_cast<std::size_t>(event)];
  }
  std::uint64_t operator[](HpcEvent event) const {
    return values_[static_cast<std::size_t>(event)];
  }

  /// Assign a value and mark the event present.
  void set(HpcEvent event, std::uint64_t value) {
    values_[static_cast<std::size_t>(event)] = value;
    present_ |= bit(event);
  }
  /// Mark the event missing from this sample (value reads as 0).
  void drop(HpcEvent event) {
    values_[static_cast<std::size_t>(event)] = 0;
    present_ &= static_cast<std::uint32_t>(~bit(event));
  }

  /// Was this event actually counted in this sample?
  bool has(HpcEvent event) const { return (present_ & bit(event)) != 0; }
  /// True when all kNumEvents events are present.
  bool complete() const {
    return present_ == ((std::uint32_t{1} << kNumEvents) - 1);
  }
  std::size_t present_count() const;
  std::vector<HpcEvent> missing_events() const;

  /// Render in `perf stat` style (Indian digit grouping, as the paper's
  /// Figure 2(b) shows); missing events print `<not counted>`.
  std::string to_perf_stat_string() const;

  const std::array<std::uint64_t, kNumEvents>& raw() const { return values_; }

 private:
  static std::uint32_t bit(HpcEvent event) {
    return std::uint32_t{1} << static_cast<std::size_t>(event);
  }

  std::array<std::uint64_t, kNumEvents> values_{};
  std::uint32_t present_ = (std::uint32_t{1} << kNumEvents) - 1;
};

class CounterProvider {
 public:
  virtual ~CounterProvider() = default;

  virtual std::string name() const = 0;

  /// Events this provider can measure (the simulated PMU supports all;
  /// a real PMU may lack some).
  virtual std::vector<HpcEvent> supported_events() const = 0;

  /// Arm the counters; resets the previous measurement.
  virtual void start() = 0;
  /// Freeze the counters.
  virtual void stop() = 0;
  /// Read the frozen counters; valid after stop().
  virtual CounterSample read() = 0;

  /// Bind the provider's stochastic state (noise, injected faults,
  /// multiplex rotation, ...) for the next measurement to `key`.  A keyed
  /// provider derives every random stream it uses for that measurement
  /// from (own_seed, key) instead of drawing from a sequential stream, so
  /// the measurement's outcome is a pure function of (workload, key) —
  /// independent of how many measurements ran before it and of which
  /// provider instance runs it.  The sharded campaign runtime keys every
  /// measurement by its global slot index, which is what makes a parallel
  /// run bit-identical to the serial one.
  ///
  /// Returns true if the provider honours keys.  The default ignores them
  /// (hardware counters have no replayable randomness to bind).
  virtual bool set_measurement_key(std::uint64_t key) {
    (void)key;
    return false;
  }
};

}  // namespace sce::hpc
