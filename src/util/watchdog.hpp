// Heartbeat watchdog for sharded acquisition.
//
// A shard that dies loudly is easy; the dangerous failure is the shard
// that silently stops making progress — a perf read blocked in the
// kernel, an instrument wedged by a driver bug — while the rest of the
// campaign keeps running and the merged result quietly never completes.
// The Watchdog gives every worker lane a heartbeat slot: lanes beat()
// on every measurement attempt, the coordinator arms the lanes that
// have work before a fan-out and disarms them at the barrier, and a
// monitor thread flags any armed lane whose last beat is older than the
// quiet window.
//
// The watchdog never kills anything — preemptive teardown would leak
// the lane's instrument state mid-measurement.  It reports: the
// on_stall callback (invoked once per lane per arm cycle, from the
// monitor thread) typically trips a CancelToken with
// CancelReason::kStalled so the stuck call, whenever it returns,
// unwinds cooperatively through the ShardStalled taxonomy error.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sce::util {

struct WatchdogConfig {
  /// A lane is stalled when its last beat is older than this.
  std::chrono::milliseconds quiet_window{1000};
  /// Monitor wake-up cadence (0 = quiet_window / 4, min 1ms).
  std::chrono::milliseconds poll_interval{0};

  /// Throws InvalidArgument on a malformed config.
  void validate() const;
};

class Watchdog {
 public:
  /// `on_stall(lane)` fires on the monitor thread, at most once per lane
  /// per arm() cycle.  The callback must not call back into the Watchdog.
  Watchdog(std::size_t lanes, WatchdogConfig config,
           std::function<void(std::size_t lane)> on_stall);
  /// Stops the monitor thread (idempotent with stop()).
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  std::size_t lanes() const { return beats_.size(); }

  /// Record progress on `lane`.  Thread-safe, wait-free (one atomic
  /// store) — cheap enough to call per measurement attempt.
  void beat(std::size_t lane);

  /// Start monitoring `active` lanes (others are exempt).  Every armed
  /// lane's clock restarts now; stall flags from the previous cycle are
  /// cleared.  Arming while armed re-arms with the new set.  Arming an
  /// all-false set starts a fresh cycle with no lane monitored yet —
  /// the per-lane entry point for workers that arm themselves as they
  /// start (see arm_lane).
  void arm(const std::vector<bool>& active);
  /// Convenience: arm every lane.
  void arm_all();
  /// Arm one lane, restarting its clock and clearing its flag.  Lets a
  /// worker opt in when its task actually begins executing, so lanes
  /// still queued behind a small thread pool cannot be mistaken for
  /// stalls.  (The flip side: a task that never starts is invisible —
  /// the watchdog watches instruments, not the scheduler.)
  void arm_lane(std::size_t lane);
  /// Retire one lane from the current cycle (its work completed or
  /// failed); a retired lane cannot be flagged until re-armed.
  void clear(std::size_t lane);
  /// Stop monitoring (beats are still accepted and ignored).
  void disarm();

  /// Lanes flagged since the last arm(), in lane order.
  std::vector<std::size_t> stalled() const;

  /// Permanently stop the monitor thread.
  void stop();

 private:
  void monitor_loop();
  std::chrono::milliseconds poll() const;

  WatchdogConfig config_;
  std::function<void(std::size_t)> on_stall_;

  /// beats_[lane] = steady_clock ticks of the lane's last beat.
  std::vector<std::atomic<std::chrono::steady_clock::rep>> beats_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<bool> armed_lanes_;
  std::vector<bool> flagged_;
  bool armed_ = false;
  bool stop_ = false;
  std::thread monitor_;
};

}  // namespace sce::util
