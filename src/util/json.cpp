#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace sce::util {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

void JsonWriter::comma_if_needed() {
  if (expecting_value_) return;  // value after a key: no comma
  if (stack_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ << ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  expecting_value_ = false;
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw InvalidArgument("JsonWriter: mismatched end_object");
  out_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  expecting_value_ = false;
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw InvalidArgument("JsonWriter: mismatched end_array");
  out_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw InvalidArgument("JsonWriter: key outside object");
  if (expecting_value_)
    throw InvalidArgument("JsonWriter: key after key");
  comma_if_needed();
  out_ << json_quote(name) << ':';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty())
    throw InvalidArgument("JsonWriter: unclosed containers");
  return out_.str();
}

}  // namespace sce::util
