#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace sce::util {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string json_number_exact(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonWriter::comma_if_needed() {
  if (expecting_value_) return;  // value after a key: no comma
  if (stack_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ << ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  expecting_value_ = false;
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw InvalidArgument("JsonWriter: mismatched end_object");
  out_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  expecting_value_ = false;
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw InvalidArgument("JsonWriter: mismatched end_array");
  out_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject)
    throw InvalidArgument("JsonWriter: key outside object");
  if (expecting_value_)
    throw InvalidArgument("JsonWriter: key after key");
  comma_if_needed();
  out_ << json_quote(name) << ':';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << json_number_exact(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  expecting_value_ = false;
  out_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty())
    throw InvalidArgument("JsonWriter: unclosed containers");
  return out_.str();
}

// --- JsonValue accessors -------------------------------------------------

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw InvalidArgument("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw InvalidArgument("JsonValue: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double n = as_number();
  const auto i = static_cast<std::int64_t>(n);
  if (static_cast<double>(i) != n)
    throw InvalidArgument("JsonValue: number is not integral");
  return i;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw InvalidArgument("JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::items() const {
  if (type_ != Type::kArray) throw InvalidArgument("JsonValue: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::members() const {
  if (type_ != Type::kObject)
    throw InvalidArgument("JsonValue: not an object");
  return object_;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const Array& a = items();
  if (index >= a.size())
    throw InvalidArgument("JsonValue: array index out of range");
  return a[index];
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw InvalidArgument("JsonValue: missing key \"" + key + "\"");
  return *v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

// --- Recursive-descent parser -------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size())
      throw InvalidArgument("parse_json: trailing characters at offset " +
                            std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("parse_json: " + what + " at offset " +
                          std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return JsonValue(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape digit");
          }
          // UTF-8 encode the code point (surrogate pairs are not needed
          // for the writer's output, which only \u-escapes control chars).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace sce::util
