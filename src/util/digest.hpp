// Stable content digests for cache keys and checkpoint naming.
//
// The evaluation service keys its result cache by (model digest, config
// digest) and derives checkpoint file names from the same pair, so the
// digest must be a pure function of the bytes — stable across processes,
// platforms and library versions.  A 128-bit FNV-1a variant (two
// independent 64-bit streams with distinct offset bases) rendered as 32
// lowercase hex characters is plenty for this: the threat model is
// accidental collision between a few thousand cached jobs, not an
// adversary forging digests (nothing security-relevant hangs off them).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sce::util {

/// 128-bit digest state; value type, comparable.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Digest& other) const { return !(*this == other); }

  /// 32 lowercase hex characters, hi half first.
  std::string hex() const;
};

/// Digest of a byte string.  Deterministic: same bytes, same digest,
/// everywhere.
Digest content_digest(std::string_view bytes);

/// Convenience: content_digest(bytes).hex().
std::string content_digest_hex(std::string_view bytes);

}  // namespace sce::util
