// Minimal JSON writer (no parsing, no DOM) for machine-readable reports.
//
// Only what the exporters need: objects, arrays, strings with escaping,
// numbers and booleans, rendered compactly and deterministically in
// insertion order.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace sce::util {

/// Escape and quote a string for JSON.
std::string json_quote(const std::string& s);

/// Render a double the way JSON expects (finite; NaN/inf become null).
std::string json_number(double value);

/// Streaming writer with explicit begin/end calls; validates nesting.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object (must be followed by a value or container).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// Final document; throws if containers remain open.
  std::string str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void comma_if_needed();

  std::ostringstream out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;
};

}  // namespace sce::util
