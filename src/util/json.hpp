// Minimal JSON support for machine-readable reports and checkpoints.
//
// The writer covers what the exporters need: objects, arrays, strings
// with escaping, numbers and booleans, rendered compactly and
// deterministically in insertion order.  The reader (JsonValue +
// parse_json) is the counterpart used by checkpoint/resume: a small DOM
// that parses exactly the documents the writer produces (plus ordinary
// hand-written JSON).
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace sce::util {

/// Escape and quote a string for JSON.
std::string json_quote(const std::string& s);

/// Render a double the way JSON expects (finite; NaN/inf become null).
std::string json_number(double value);

/// Render a double with enough digits to round-trip bit-exactly through
/// parse_json (checkpoints rely on this for resumed-run reproducibility).
std::string json_number_exact(double value);

/// Streaming writer with explicit begin/end calls; validates nesting.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object (must be followed by a value or container).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  /// Double rendered via json_number_exact (bit-exact round trip).
  JsonWriter& value_exact(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);

  /// Final document; throws if containers remain open.
  std::string str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void comma_if_needed();

  std::ostringstream out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;
};

/// Parsed JSON document node.  Objects preserve key insertion order (the
/// writer emits them that way, and checkpoints are diffed as text).
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< number checked to be integral
  const std::string& as_string() const;
  const Array& items() const;    ///< array elements
  const Object& members() const; ///< object key/value pairs

  /// Array element access with bounds checking.
  const JsonValue& at(std::size_t index) const;
  /// Object member access; throws InvalidArgument if the key is absent.
  const JsonValue& at(const std::string& key) const;
  /// Object member lookup; nullptr if the key is absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Elements of an array / members of an object; 0 otherwise.
  std::size_t size() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a complete JSON document; throws InvalidArgument on malformed
/// input or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace sce::util
