// Bounded retry with exponential backoff for transient failures.
//
// Hardware-counter acquisition on a shared host fails transiently all the
// time (EINTR'd reads, counters briefly unschedulable, paranoid-mode
// races).  A RetryPolicy bounds how hard an acquisition loop tries before
// declaring a measurement lost, and retry_call() is the generic driver:
// it retries a callable on TransientFailure and rethrows the last error
// once the attempt budget is spent.
#pragma once

#include <chrono>
#include <cstddef>
#include <utility>

#include "util/error.hpp"

namespace sce::util {

struct RetryPolicy {
  /// Total attempts, including the first (must be >= 1).
  std::size_t max_attempts = 5;
  /// Sleep before the first retry; 0 disables sleeping entirely.
  std::chrono::microseconds initial_backoff{0};
  /// Growth factor applied per retry (>= 1).
  double backoff_multiplier = 2.0;
  /// Backoff ceiling.
  std::chrono::microseconds max_backoff{100000};

  /// Throws InvalidArgument if the policy is malformed.
  void validate() const;

  /// Backoff before retry number `retry` (1-based: the sleep after the
  /// first failed attempt is backoff_for(1)).
  std::chrono::microseconds backoff_for(std::size_t retry) const;
};

/// Sleep helper used between attempts (no-op for zero durations).
void backoff_sleep(std::chrono::microseconds duration);

/// Outcome bookkeeping for a retried call.
struct RetryStats {
  std::size_t attempts = 0;  ///< attempts actually made
  std::size_t retries = 0;   ///< attempts that failed transiently
};

/// Invoke `fn` up to policy.max_attempts times, sleeping per the policy
/// between attempts.  Only TransientFailure is retried; any other
/// exception propagates immediately.  When the budget is exhausted the
/// last TransientFailure is rethrown.  `stats`, when non-null, records
/// how many attempts were spent.
template <typename F>
auto retry_call(const RetryPolicy& policy, F&& fn,
                RetryStats* stats = nullptr) -> decltype(fn()) {
  policy.validate();
  std::size_t attempt = 0;
  for (;;) {
    ++attempt;
    if (stats) stats->attempts = attempt;
    try {
      return fn();
    } catch (const TransientFailure&) {
      if (stats) ++stats->retries;
      if (attempt >= policy.max_attempts) throw;
      backoff_sleep(policy.backoff_for(attempt));
    }
  }
}

}  // namespace sce::util
