#include "util/retry.hpp"

#include <cmath>
#include <thread>

namespace sce::util {

void RetryPolicy::validate() const {
  if (max_attempts == 0)
    throw ValidationError("RetryPolicy", "max_attempts", "must be >= 1");
  if (backoff_multiplier < 1.0)
    throw ValidationError("RetryPolicy", "backoff_multiplier",
                          "must be >= 1");
  if (initial_backoff.count() < 0 || max_backoff.count() < 0)
    throw ValidationError("RetryPolicy", "backoff durations", "must be >= 0");
}

std::chrono::microseconds RetryPolicy::backoff_for(std::size_t retry) const {
  if (retry == 0 || initial_backoff.count() == 0)
    return std::chrono::microseconds{0};
  const double scale =
      std::pow(backoff_multiplier, static_cast<double>(retry - 1));
  const double raw = static_cast<double>(initial_backoff.count()) * scale;
  const double capped = std::min(raw, static_cast<double>(max_backoff.count()));
  return std::chrono::microseconds{
      static_cast<std::chrono::microseconds::rep>(capped)};
}

void backoff_sleep(std::chrono::microseconds duration) {
  if (duration.count() > 0) std::this_thread::sleep_for(duration);
}

}  // namespace sce::util
