// Process-wide heap allocation counter.
//
// Linking `sce_util` installs counting replacements for every global
// operator new/delete.  The counters let tests and benchmarks assert the
// planned inference engine's core claim — zero heap allocations in the
// steady-state hot path — instead of taking it on faith.
//
// The hook counts; it never changes allocation behavior (all forms
// forward to malloc/free with correct alignment and failure semantics).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sce::util {

/// Total operator-new calls (all forms) since process start.
std::uint64_t allocation_count();

/// Total bytes requested from operator new since process start.
std::uint64_t allocated_bytes();

/// Counts allocations across a scope:
///   AllocationCounter guard;
///   hot_path();
///   EXPECT_EQ(guard.allocations(), 0u);
class AllocationCounter {
 public:
  AllocationCounter()
      : start_count_(allocation_count()), start_bytes_(allocated_bytes()) {}

  std::uint64_t allocations() const {
    return allocation_count() - start_count_;
  }
  std::uint64_t bytes() const { return allocated_bytes() - start_bytes_; }

 private:
  std::uint64_t start_count_;
  std::uint64_t start_bytes_;
};

}  // namespace sce::util
