// Fixed-size thread pool for sharded acquisition.
//
// The parallel campaign runtime needs exactly one thing from a pool:
// run a batch of independent shard chunks, then hit a barrier.  This
// pool provides that and nothing more — a fixed set of workers created
// up front (no growth, no work stealing), a FIFO task queue, and a
// wait() barrier that blocks until every submitted task has finished
// and rethrows the first task exception.  Workers never touch shared
// campaign state; all cross-thread coordination happens through the
// queue mutex, which keeps the acquisition path trivially data-race
// free (and cheap to audit under ThreadSanitizer).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace sce::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task.  Tasks must not call submit() or wait() on their
  /// own pool (the pool is a fan-out/barrier primitive, not a scheduler).
  void submit(std::function<void()> task);

  /// Enqueue one cancellable task: if `token` reports cancelled by the
  /// time a worker dequeues it, the task body is skipped (it still
  /// counts as completed for wait()).  This is how a supervised fan-out
  /// drains promptly on cancel — queued-but-unstarted work is dropped at
  /// the pool instead of each task re-checking on entry.
  void submit(const CancelToken& token, std::function<void()> task);

  /// Block until every submitted task has completed.  If any task threw,
  /// rethrows the first captured exception (in completion order) and
  /// clears it; the remaining tasks still ran to completion.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  // queued + currently running
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace sce::util
