#include "util/base64.hpp"

#include <array>
#include <cstdint>

#include "util/error.hpp"

namespace sce::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> decode_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i)
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return table;
}

}  // namespace

std::string base64_encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                            (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                            static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back(kAlphabet[(v >> 6) & 0x3F]);
    out.push_back(kAlphabet[v & 0x3F]);
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<unsigned char>(bytes[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                            (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back(kAlphabet[(v >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

std::string base64_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> kDecode = decode_table();
  if (text.size() % 4 != 0)
    throw InvalidArgument("base64: length must be a multiple of 4");
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the final quantum, last two slots.
        if (!last || j < 2)
          throw InvalidArgument("base64: misplaced padding");
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) throw InvalidArgument("base64: data after padding");
      const std::int8_t d = kDecode[static_cast<unsigned char>(c)];
      if (d < 0)
        throw InvalidArgument("base64: invalid character");
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xFF));
  }
  return out;
}

}  // namespace sce::util
