// Error types shared across the sce libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace sce {

/// Base class for all errors thrown by the sce libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An I/O operation (file load/store) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A platform facility (e.g. perf_event_open) is unavailable.
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

/// A transient measurement failure (interrupted syscall, counter briefly
/// unschedulable, co-tenant interference).  Retrying the operation is
/// expected to succeed; acquisition drivers catch this type and apply
/// their RetryPolicy instead of aborting the campaign.
class TransientFailure : public Error {
 public:
  explicit TransientFailure(const std::string& what) : Error(what) {}
};

}  // namespace sce
