// Error types shared across the sce libraries.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace sce {

/// Base class for all errors thrown by the sce libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A config field failed validation.  Every campaign-facing config's
/// validate() (CampaignConfig, FixedVsRandomConfig, SweepConfig,
/// OnlineConfig, RetryPolicy, service::JobConfig) throws this structured
/// form: `domain` names the config family ("campaign", "sweep", ...),
/// `field` the offending member, `constraint` the violated rule.  The
/// rendered message stays the familiar "domain: field constraint" text,
/// and the type derives from InvalidArgument so existing catch sites are
/// untouched — but a remote caller (the evaluation service relays these
/// verbatim as rejection replies) can report which field to fix without
/// parsing prose.
class ValidationError : public InvalidArgument {
 public:
  ValidationError(std::string domain, std::string field,
                  std::string constraint)
      : InvalidArgument(domain + ": " + field + " " + constraint),
        domain_(std::move(domain)),
        field_(std::move(field)),
        constraint_(std::move(constraint)) {}

  const std::string& domain() const { return domain_; }
  const std::string& field() const { return field_; }
  const std::string& constraint() const { return constraint_; }

 private:
  std::string domain_;
  std::string field_;
  std::string constraint_;
};

/// An I/O operation (file load/store) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A platform facility (e.g. perf_event_open) is unavailable.
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

/// A transient measurement failure (interrupted syscall, counter briefly
/// unschedulable, co-tenant interference).  Retrying the operation is
/// expected to succeed; acquisition drivers catch this type and apply
/// their RetryPolicy instead of aborting the campaign.
class TransientFailure : public Error {
 public:
  explicit TransientFailure(const std::string& what) : Error(what) {}
};

// --- Supervision taxonomy ------------------------------------------------
// The supervised execution runtime (util/cancel.hpp, util/watchdog.hpp,
// core::Campaign) stops work through these four types rather than a bare
// Error, so drivers can tell a user cancel from a blown deadline from a
// sick instrument and react per cause.  Campaign::run/sweep themselves
// translate Cancelled/DeadlineExceeded/ShardStalled raised inside their
// shards into a Partial result with a flushed checkpoint; the types still
// escape from code without a partial-result channel (CancelToken::check
// in user workloads, the fixed-vs-random screen).

/// Base of the supervision taxonomy: the work was stopped by policy, not
/// by a defect — completed measurements remain valid.
class Interrupted : public Error {
 public:
  explicit Interrupted(const std::string& what) : Error(what) {}
};

/// A CancelToken was tripped explicitly (operator stop, job eviction).
class Cancelled : public Interrupted {
 public:
  explicit Cancelled(const std::string& what) : Interrupted(what) {}
};

/// A wall-clock deadline armed on a CancelToken expired.
class DeadlineExceeded : public Interrupted {
 public:
  explicit DeadlineExceeded(const std::string& what) : Interrupted(what) {}
};

/// A Watchdog observed no heartbeat from a shard within its quiet
/// window — the shard is stuck inside a measurement, not merely slow.
class ShardStalled : public Interrupted {
 public:
  explicit ShardStalled(const std::string& what) : Interrupted(what) {}
};

/// A shard's instrument failed permanently (its RetryPolicy kept
/// exhausting).  Raised by the shard loop to request failover; escapes
/// Campaign::run only when no healthy instrument remains.
class InstrumentLost : public Error {
 public:
  explicit InstrumentLost(const std::string& what) : Error(what) {}
};

}  // namespace sce
