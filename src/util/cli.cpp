#include "util/cli.hpp"

#include <charconv>
#include <sstream>

#include "util/error.hpp"

namespace sce::util {

void CliParser::add_option(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  specs_[name] = Spec{help, /*is_flag=*/false, default_value};
  if (default_value) values_[name] = *default_value;
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, /*is_flag=*/true, std::nullopt};
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end())
      throw InvalidArgument("unknown option --" + name);
    if (it->second.is_flag) {
      if (has_value)
        throw InvalidArgument("flag --" + name + " does not take a value");
      values_[name] = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw InvalidArgument("option --" + name + " requires a value");
      value = argv[++i];
    }
    values_[name] = value;
  }
}

bool CliParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliParser::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end())
    throw InvalidArgument("option --" + name + " was not provided");
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size())
    throw InvalidArgument("option --" + name + ": '" + v +
                          "' is not an integer");
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + ": '" + v +
                          "' is not a number");
  }
}

bool CliParser::get_flag(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << "=<value>";
    os << "\n      " << spec.help;
    if (spec.default_value) os << " (default: " << *spec.default_value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sce::util
