#include "util/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sce::util {

namespace {
std::string group_digits(std::uint64_t value,
                         const std::vector<int>& group_sizes) {
  // group_sizes gives the size of each group from the right; the last entry
  // repeats.
  std::string digits = std::to_string(value);
  std::string out;
  int group_index = 0;
  int remaining_in_group =
      group_sizes.empty() ? 3 : group_sizes[0];
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (remaining_in_group == 0) {
      out.push_back(',');
      group_index = std::min<int>(group_index + 1,
                                  static_cast<int>(group_sizes.size()) - 1);
      remaining_in_group = group_sizes[static_cast<std::size_t>(group_index)];
    }
    out.push_back(*it);
    --remaining_in_group;
  }
  std::reverse(out.begin(), out.end());
  return out;
}
}  // namespace

std::string group_thousands(std::uint64_t value) {
  return group_digits(value, {3});
}

std::string group_indian(std::uint64_t value) {
  return group_digits(value, {3, 2});
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string p_value_string(double p, double approx_zero_threshold) {
  if (p < approx_zero_threshold) return "~0";
  return fixed(p, 4);
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << pad_left(row[c], widths[c]);
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  }
  return os.str();
}

std::string bar(double value, double max_value, std::size_t width) {
  if (max_value <= 0.0 || value <= 0.0 || width == 0) return "";
  const double frac = std::min(1.0, value / max_value);
  const std::size_t cells = static_cast<std::size_t>(
      std::lround(frac * static_cast<double>(width)));
  std::string out;
  for (std::size_t i = 0; i < cells; ++i) out += "█";
  return out;
}

}  // namespace sce::util
