#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace sce::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    throw InvalidArgument("ThreadPool: need at least one thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(const CancelToken& token, std::function<void()> task) {
  submit([token, task = std::move(task)] {
    if (!token.cancelled()) task();
  });
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw Error("ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sce::util
