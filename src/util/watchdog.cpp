#include "util/watchdog.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace sce::util {

namespace {

std::chrono::steady_clock::rep now_ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

void WatchdogConfig::validate() const {
  if (quiet_window <= std::chrono::milliseconds::zero())
    throw InvalidArgument("watchdog: quiet_window must be > 0");
  if (poll_interval < std::chrono::milliseconds::zero())
    throw InvalidArgument("watchdog: poll_interval must be >= 0");
}

Watchdog::Watchdog(std::size_t lanes, WatchdogConfig config,
                   std::function<void(std::size_t)> on_stall)
    : config_(config), on_stall_(std::move(on_stall)), beats_(lanes) {
  config_.validate();
  if (lanes == 0) throw InvalidArgument("watchdog: need at least one lane");
  if (!on_stall_) throw InvalidArgument("watchdog: on_stall must be set");
  armed_lanes_.assign(lanes, false);
  flagged_.assign(lanes, false);
  for (auto& b : beats_) b.store(now_ticks(), std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() { stop(); }

std::chrono::milliseconds Watchdog::poll() const {
  if (config_.poll_interval > std::chrono::milliseconds::zero())
    return config_.poll_interval;
  return std::max(std::chrono::milliseconds(1), config_.quiet_window / 4);
}

void Watchdog::beat(std::size_t lane) {
  if (lane >= beats_.size())
    throw InvalidArgument("watchdog: lane out of range");
  beats_[lane].store(now_ticks(), std::memory_order_release);
}

void Watchdog::arm(const std::vector<bool>& active) {
  if (active.size() != beats_.size())
    throw InvalidArgument("watchdog: arm() lane-set size mismatch");
  const auto t = now_ticks();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_lanes_ = active;
    std::fill(flagged_.begin(), flagged_.end(), false);
    for (std::size_t k = 0; k < beats_.size(); ++k)
      if (active[k]) beats_[k].store(t, std::memory_order_release);
    armed_ = std::any_of(active.begin(), active.end(),
                         [](bool a) { return a; });
  }
  wake_.notify_all();
}

void Watchdog::arm_all() { arm(std::vector<bool>(beats_.size(), true)); }

void Watchdog::arm_lane(std::size_t lane) {
  if (lane >= beats_.size())
    throw InvalidArgument("watchdog: lane out of range");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_lanes_[lane] = true;
    flagged_[lane] = false;
    beats_[lane].store(now_ticks(), std::memory_order_release);
    armed_ = true;
  }
  wake_.notify_all();
}

void Watchdog::clear(std::size_t lane) {
  if (lane >= beats_.size())
    throw InvalidArgument("watchdog: lane out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  armed_lanes_[lane] = false;
}

void Watchdog::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
}

std::vector<std::size_t> Watchdog::stalled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::size_t> lanes;
  for (std::size_t k = 0; k < flagged_.size(); ++k)
    if (flagged_[k]) lanes.push_back(k);
  return lanes;
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  wake_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void Watchdog::monitor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) return;
    if (!armed_) {
      wake_.wait(lock, [this] { return stop_ || armed_; });
      continue;
    }
    wake_.wait_for(lock, poll(), [this] { return stop_; });
    if (stop_) return;
    if (!armed_) continue;
    const auto now = now_ticks();
    const auto quiet = std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           config_.quiet_window)
                           .count();
    for (std::size_t k = 0; k < beats_.size(); ++k) {
      if (!armed_lanes_[k] || flagged_[k]) continue;
      const auto last = beats_[k].load(std::memory_order_acquire);
      if (now - last < quiet) continue;
      flagged_[k] = true;
      // Fire outside the lock: the callback may grab unrelated locks
      // (log sinks, cancel-token message mutexes).
      lock.unlock();
      on_stall_(k);
      lock.lock();
      if (stop_) return;
    }
  }
}

}  // namespace sce::util
