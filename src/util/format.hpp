// Number/text formatting helpers used by report and bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sce::util {

/// Group digits with commas, Western style: 1234567 -> "1,234,567".
std::string group_thousands(std::uint64_t value);

/// Group digits the way Linux `perf stat` renders them on an en_IN locale
/// (the grouping visible in the paper's Figure 2(b)): last three digits,
/// then groups of two — 2267701129 -> "2,26,77,01,129".
std::string group_indian(std::uint64_t value);

/// Fixed-point rendering with `digits` decimals ("-21.8166").
std::string fixed(double value, int digits);

/// p-value rendering used in the paper's tables: values below 10^-4 are
/// shown as the literal string "~0" (the paper prints "≈0").
std::string p_value_string(double p, double approx_zero_threshold = 1e-4);

/// Left-pad `s` with spaces to `width` characters.
std::string pad_left(const std::string& s, std::size_t width);
/// Right-pad `s` with spaces to `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Render a simple aligned text table. `rows` includes the header row.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Unicode block-character bar of `value` scaled so `max_value` spans
/// `width` columns (used for terminal histograms in the figure benches).
std::string bar(double value, double max_value, std::size_t width);

}  // namespace sce::util
