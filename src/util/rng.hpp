// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (dataset synthesis, weight
// initialization, measurement noise, replacement-policy randomness) draws
// from these generators so that experiments are bit-reproducible given a
// seed.  The generator is xoshiro256** seeded through SplitMix64, which is
// the recommended seeding procedure from the xoshiro authors.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sce::util {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// generator state and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Combine two 64-bit words into one well-distributed seed.  Used to
/// derive per-measurement RNG streams from (base_seed, measurement_key)
/// pairs: close keys yield unrelated streams, and the derivation is a
/// pure function, so a measurement's stream does not depend on how many
/// measurements ran before it (the property parallel sharded acquisition
/// relies on for bit-reproducibility).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

/// xoshiro256** 1.0 — a fast, high-quality 64-bit PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// plugged into <random> distributions, but the convenience members below
/// avoid libstdc++'s unspecified distribution algorithms for portability of
/// recorded results.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Standard normal variate (Box–Muller, cached spare).
  double normal();
  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sce::util
