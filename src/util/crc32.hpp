// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for checkpoint integrity
// footers.  Not a cryptographic MAC — the threat model is torn writes
// and bit rot on crash-interrupted filesystems, not an adversary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sce::util {

/// Incremental update: feed `crc32(data, previous)` to chain buffers;
/// start from the default 0 for a fresh checksum.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Render as fixed-width lowercase hex ("00000000".."ffffffff").
std::string crc32_hex(std::uint32_t crc);

/// Parse the 8-hex-digit rendering; throws InvalidArgument otherwise.
std::uint32_t parse_crc32_hex(std::string_view hex);

}  // namespace sce::util
