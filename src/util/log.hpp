// Minimal leveled logger used by campaign drivers and backends.
//
// Single-process tooling does not need a logging framework; this keeps a
// global level, writes to stderr, and is safe to call from one thread at a
// time (all sce drivers are single-threaded by design — the measured
// workload must not share its core with logging).
#pragma once

#include <sstream>
#include <string>

namespace sce::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line at `level` (no-op if below the threshold).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(args...));
}

}  // namespace sce::util
