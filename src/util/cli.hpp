// A small command-line option parser for the example and bench drivers.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
// Unknown options raise InvalidArgument so typos in experiment scripts are
// caught rather than silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sce::util {

class CliParser {
 public:
  /// Declare an option. `help` is shown by usage(); `default_value` (if any)
  /// seeds the parsed map so get() always succeeds for declared options.
  void add_option(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);
  /// Declare a boolean flag (defaults to false, set to true if present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws InvalidArgument on unknown or malformed options.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Render a usage string listing all declared options.
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::optional<std::string> default_value;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sce::util
