// Base64 (RFC 4648, with padding) for carrying binary payloads inside
// the evaluation service's JSON protocol frames — serialized model
// weights are a few hundred kilobytes, and the framing layer speaks
// text.
#pragma once

#include <string>
#include <string_view>

namespace sce::util {

/// Standard alphabet, '=' padded, no line breaks.
std::string base64_encode(std::string_view bytes);

/// Strict decode: rejects non-alphabet characters, bad padding and
/// trailing garbage with InvalidArgument (protocol frames are machine
/// generated; leniency would only mask corruption).
std::string base64_decode(std::string_view text);

}  // namespace sce::util
