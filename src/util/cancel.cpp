#include "util/cancel.hpp"

#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace sce::util {

struct CancelToken::State {
  std::shared_ptr<State> parent;

  /// kNone until tripped; written exactly once (CAS), so readers that
  /// observe a non-kNone reason with acquire ordering also observe the
  /// message written before the release store.
  std::atomic<std::uint8_t> reason{static_cast<std::uint8_t>(
      CancelReason::kNone)};

  std::atomic<bool> has_deadline{false};
  std::chrono::steady_clock::time_point deadline{};

  std::mutex message_mutex;
  std::string message;

  /// Trip this state only (no hierarchy walk).  First caller wins.
  void trip(CancelReason why, const std::string& text) {
    {
      std::lock_guard<std::mutex> lock(message_mutex);
      if (reason.load(std::memory_order_relaxed) !=
          static_cast<std::uint8_t>(CancelReason::kNone))
        return;
      message = text;
      reason.store(static_cast<std::uint8_t>(why),
                   std::memory_order_release);
    }
  }

  /// This state's own verdict, latching an expired deadline as a trip.
  CancelReason own_reason() {
    const auto r = static_cast<CancelReason>(
        reason.load(std::memory_order_acquire));
    if (r != CancelReason::kNone) return r;
    if (has_deadline.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now() >= deadline) {
      trip(CancelReason::kDeadline, "deadline exceeded");
      return static_cast<CancelReason>(
          reason.load(std::memory_order_acquire));
    }
    return CancelReason::kNone;
  }
};

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

CancelToken::CancelToken(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

CancelToken CancelToken::child() const {
  auto state = std::make_shared<State>();
  state->parent = state_;
  return CancelToken(std::move(state));
}

void CancelToken::cancel(const std::string& why) {
  state_->trip(CancelReason::kCancelled, why);
}

void CancelToken::cancel_with(CancelReason reason, const std::string& why) {
  if (reason == CancelReason::kNone) return;
  state_->trip(reason, why);
}

void CancelToken::set_deadline_after(std::chrono::milliseconds budget) {
  state_->deadline = std::chrono::steady_clock::now() + budget;
  state_->has_deadline.store(true, std::memory_order_release);
}

bool CancelToken::cancelled() const {
  return reason() != CancelReason::kNone;
}

CancelReason CancelToken::reason() const {
  for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    const CancelReason r = s->own_reason();
    if (r != CancelReason::kNone) return r;
  }
  return CancelReason::kNone;
}

std::string CancelToken::message() const {
  for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->own_reason() == CancelReason::kNone) continue;
    std::lock_guard<std::mutex> lock(s->message_mutex);
    return s->message;
  }
  return "";
}

void CancelToken::check() const {
  switch (reason()) {
    case CancelReason::kNone:
      return;
    case CancelReason::kCancelled:
      throw Cancelled(message());
    case CancelReason::kDeadline:
      throw DeadlineExceeded(message());
    case CancelReason::kStalled:
      throw ShardStalled(message());
  }
}

}  // namespace sce::util
