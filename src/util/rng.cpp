#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sce::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // Two chained SplitMix64 steps: the first diffuses b, the second
  // diffuses a against it.  Both inputs affect every output bit.
  std::uint64_t state = b;
  const std::uint64_t mixed_b = splitmix64(state);
  state = a ^ mixed_b;
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw InvalidArgument("Rng::below: n must be positive");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::range: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace sce::util
