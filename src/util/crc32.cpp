#include "util/crc32.hpp"

#include <array>
#include <string>

#include "util/error.hpp"

namespace sce::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

std::uint32_t parse_crc32_hex(std::string_view hex) {
  if (hex.size() != 8)
    throw InvalidArgument("crc32: expected 8 hex digits");
  std::uint32_t value = 0;
  for (const char ch : hex) {
    value <<= 4;
    if (ch >= '0' && ch <= '9')
      value |= static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f')
      value |= static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F')
      value |= static_cast<std::uint32_t>(ch - 'A' + 10);
    else
      throw InvalidArgument("crc32: invalid hex digit");
  }
  return value;
}

}  // namespace sce::util
