// Cooperative, hierarchical cancellation with wall-clock deadlines.
//
// Long acquisition runs need a way to stop that does not tear threads
// down mid-measurement: a CancelToken is a shared handle that loops poll
// (cancelled()) or assert (check(), which throws the matching error from
// the supervision taxonomy in util/error.hpp) at safe points.  Tokens
// form a tree — child() mints a token that observes its parent, so
// cancelling a whole job cancels every stage derived from it while a
// stage can still be cancelled alone.  A deadline is just a pre-armed
// cancellation: once the token's (or any ancestor's) deadline passes,
// the token reports CancelReason::kDeadline.
//
// All operations are thread-safe; cancel() is idempotent (the first
// reason wins) and tokens are cheap to copy — copies share state, which
// is the point: hand one to every worker, trip it once.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace sce::util {

/// Why a token reports cancelled.  kStalled is reserved for supervision
/// machinery (the Watchdog) so a stall-triggered stop is distinguishable
/// from a user cancel in diagnostics and in the thrown error type.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kCancelled,  ///< explicit cancel()
  kDeadline,   ///< wall-clock deadline expired
  kStalled,    ///< a supervisor declared the work stalled
};

class CancelToken {
 public:
  /// A fresh root token, not cancelled, no deadline.
  CancelToken();

  /// A token derived from this one: it reports cancelled whenever any
  /// ancestor does (or its own cancel/deadline trips), but cancelling
  /// the child never affects the parent.
  CancelToken child() const;

  /// Trip the token (first reason wins; later calls are no-ops).
  void cancel(const std::string& why = "cancelled");
  /// Trip with an explicit reason — how the Watchdog reports a stall.
  void cancel_with(CancelReason reason, const std::string& why);

  /// Arm a deadline `budget` from now (replaces any earlier deadline on
  /// this token; ancestors keep their own).  A non-positive budget trips
  /// immediately.
  void set_deadline_after(std::chrono::milliseconds budget);

  /// True once this token or any ancestor is cancelled or past deadline.
  bool cancelled() const;
  /// The effective reason (nearest tripped token wins, self first).
  CancelReason reason() const;
  /// Human-readable cause recorded at cancel time ("" while kNone).
  std::string message() const;

  /// Throw the taxonomy error matching reason() if cancelled:
  /// Cancelled, DeadlineExceeded or ShardStalled.  No-op otherwise.
  void check() const;

 private:
  struct State;
  explicit CancelToken(std::shared_ptr<State> state);

  std::shared_ptr<State> state_;
};

}  // namespace sce::util
