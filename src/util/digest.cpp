#include "util/digest.hpp"

namespace sce::util {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Stream A uses the standard FNV-1a offset basis; stream B a second
// arbitrary odd constant so the two halves decorrelate.
constexpr std::uint64_t kOffsetA = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kOffsetB = 0x9ae16a3b2f90404fULL;

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t state) {
  for (unsigned char c : bytes) {
    state ^= static_cast<std::uint64_t>(c);
    state *= kFnvPrime;
  }
  return state;
}

}  // namespace

std::string Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(15 - i)] = kHex[(hi >> (4 * i)) & 0xF];
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(31 - i)] = kHex[(lo >> (4 * i)) & 0xF];
  return out;
}

Digest content_digest(std::string_view bytes) {
  Digest d;
  d.hi = fnv1a(bytes, kOffsetA);
  // Folding the length into stream B separates messages that FNV's
  // byte-at-a-time mixing would otherwise treat as related prefixes.
  d.lo = fnv1a(bytes, kOffsetB ^ (0x9e3779b97f4a7c15ULL * bytes.size()));
  return d;
}

std::string content_digest_hex(std::string_view bytes) {
  return content_digest(bytes).hex();
}

}  // namespace sce::util
