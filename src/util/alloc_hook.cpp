#include "util/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace sce::util {
namespace {

// Relaxed ordering: the counters are read only from quiescent points
// (before/after a measured region on the same thread), never used for
// synchronization.
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // operator new must return a distinct pointer for size 0.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::size_t alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, padded == 0 ? alignment : padded);
}

}  // namespace

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

std::uint64_t allocated_bytes() {
  return g_bytes.load(std::memory_order_relaxed);
}

}  // namespace sce::util

// ---------------------------------------------------------------------------
// Global replacements.  Defining any operator new in a linked TU replaces
// the library version for the whole program (including libstdc++'s own
// container allocations), so the counters see every heap allocation.

void* operator new(std::size_t size) {
  if (void* p = sce::util::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = sce::util::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return sce::util::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return sce::util::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = sce::util::counted_alloc(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = sce::util::counted_alloc(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return sce::util::counted_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return sce::util::counted_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
