// Core event model: derives the cycle-domain perf events from the
// architectural counts produced by the cache/branch/TLB models.
//
// perf's `cycles` ticks at the (turbo-scaled) core frequency while
// `ref-cycles` ticks at the nominal TSC frequency and `bus-cycles` at the
// bus clock (TSC / bus ratio).  We model a simple in-order cost:
//   cycles = instructions * base_cpi
//          + memory latency accumulated by the hierarchy
//          + mispredicts * branch penalty
#pragma once

#include <cstdint>

namespace sce::uarch {

struct CoreModelConfig {
  /// Base cycles per (non-memory) instruction.
  double base_cpi = 0.35;
  std::uint32_t branch_mispredict_cycles = 15;
  /// ratio of core frequency to TSC frequency (turbo multiplier).
  double core_over_ref = 1.014;  // matches the paper's Fig 2(b) ratio
  /// TSC ticks per bus cycle (Intel's bus/TSC divider; ~25.8 in Fig 2(b)).
  double ref_over_bus = 25.8;
};

inline bool operator==(const CoreModelConfig& a, const CoreModelConfig& b) {
  return a.base_cpi == b.base_cpi &&
         a.branch_mispredict_cycles == b.branch_mispredict_cycles &&
         a.core_over_ref == b.core_over_ref && a.ref_over_bus == b.ref_over_bus;
}
inline bool operator!=(const CoreModelConfig& a, const CoreModelConfig& b) {
  return !(a == b);
}

struct CoreCounts {
  std::uint64_t instructions = 0;
  std::uint64_t memory_cycles = 0;  // accumulated hierarchy latency
  std::uint64_t mispredicts = 0;
};

struct DerivedCycles {
  std::uint64_t cycles = 0;
  std::uint64_t ref_cycles = 0;
  std::uint64_t bus_cycles = 0;
};

DerivedCycles derive_cycles(const CoreModelConfig& config,
                            const CoreCounts& counts);

}  // namespace sce::uarch
