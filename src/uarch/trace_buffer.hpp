// Record-once / replay-many trace storage.
//
// A TraceBuffer is a TraceSink that captures one measurement's dynamic
// trace in a compact, relocatable encoding, so the expensive part of an
// instrumented classification — executing the network — happens once,
// and the cheap part — driving cache/branch models — can be repeated
// across many microarchitectural configurations (`replay`).
//
// ## Relocatable address encoding
//
// trace.hpp's contract streams *raw* virtual addresses, which makes a
// recorded trace a function of the recording process's heap layout.
// This buffer stores addresses in two layout-free coordinate systems:
//
//  * Registered regions (`register_region`, fed by
//    nn::InferencePlan::register_regions) are coalesced into *relocation
//    groups*: maximal sets of regions whose 4 KiB page spans intersect.
//    A page of a registered region is identified by (group, page index
//    within the group), never by its raw address.  Groups preserve the
//    exact page-sharing pattern of the live run: two accesses landed on
//    the same page live iff they map to the same (group, index) pair.
//  * Unregistered stragglers fall back to their raw page number, so
//    registration is an optimization and a portability statement, not a
//    correctness requirement.
//
// Both identities are folded into a *stable page id* (group pages live
// at kStablePageBase, far above any user-space raw page), and each
// event's address is stored as a delta-coded *canonical* address: the
// stable page's first-touch ordinal within this trace, times 4 KiB, plus
// the untouched low 12 bits.  Because SimulatedPmu's address
// normalization makes counts invariant under any page renaming that
// preserves page identity, first-touch order and page offsets — which
// both encodings are — replaying a trace reproduces the live
// measurement's counts bit-exactly (asserted in tests/hpc/replay_test).
//
// ## Replay
//
// `replay(sink, cls, addressing)` re-emits the recorded stream:
//  * kCanonical hands the sink the per-trace canonical addresses — this
//    is exactly what SimulatedPmu's normalization would produce for a
//    cold (per-measurement) mapping, so a cold consumer can skip its own
//    page-hashing entirely.
//  * kSessionStable hands it the stable page ids, which are consistent
//    across traces recorded with the same registration sequence — what a
//    *warm* consumer needs so that page identity persists across
//    replayed measurements the way raw addresses persist live.
//
// Memory and control-flow events are kept as two separately ordered
// streams (plus scalar totals for structural branches and retired
// instructions); the cross-class interleaving is not preserved.  That is
// lossless for every model in this repository: the hierarchy, TLB,
// prefetcher and pollution stream consume only loads/stores, the branch
// predictors consume only conditional branches, and structural/retired
// counts are pure tallies — the classes never share state.  ReplayClass
// lets a driver replay just the component a configuration axis varies.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "uarch/trace.hpp"

namespace sce::uarch {

/// Which part of the recorded stream to re-emit.
enum class ReplayClass { kAll, kMemory, kControlFlow };

/// Address space the replayed loads/stores are expressed in (see file
/// comment).
enum class ReplayAddressing { kCanonical, kSessionStable };

/// Architectural totals of a recorded trace — everything about the
/// measurement that is independent of the microarchitectural config.
struct TraceSummary {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_bytes = 0;
  std::uint64_t store_bytes = 0;
  std::uint64_t conditional_branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t structural_branches = 0;
  std::uint64_t retired = 0;

  std::uint64_t branches() const {
    return conditional_branches + structural_branches;
  }
  std::uint64_t instructions() const {
    return loads + stores + branches() + retired;
  }
  std::uint64_t events() const {
    return loads + stores + conditional_branches;
  }
};

/// Size/shape of the encoded trace, for reports and compaction checks.
struct TraceBufferStats {
  std::uint64_t events = 0;         ///< encoded loads+stores+branches
  std::uint64_t encoded_bytes = 0;  ///< stream bytes (excl. tables)
  std::size_t regions = 0;
  std::size_t relocation_groups = 0;
  std::size_t pages_touched = 0;
  std::size_t unregistered_pages = 0;
  std::size_t branch_sites = 0;

  double bytes_per_event() const {
    return events == 0 ? 0.0
                       : static_cast<double>(encoded_bytes) /
                             static_cast<double>(events);
  }
};

class TraceBuffer final : public TraceSink {
 public:
  /// Base of the canonical address space emitted by kCanonical replay.
  /// Deliberately equal to SimulatedPmu's normalized base so a cold
  /// consumer's skipped normalization is bit-compatible with the live
  /// path.
  static constexpr std::uintptr_t kCanonicalBase = std::uintptr_t{1} << 34;
  /// First stable page id handed to relocation groups; above any
  /// user-space raw page so registered and unregistered pages never
  /// collide.
  static constexpr std::uintptr_t kStablePageBase = std::uintptr_t{1} << 48;

  /// Declare [base, base+bytes) as a relocatable buffer.  Must be called
  /// before the first event is recorded (the group layout is frozen at
  /// that point); throws InvalidArgument afterwards.  Returns the region
  /// index.  Stable page ids are a pure function of the registration
  /// sequence, so buffers that register the same regions in the same
  /// order agree on them.
  std::size_t register_region(std::string name, const void* base,
                              std::size_t bytes);
  std::size_t region_count() const { return regions_.size(); }

  // --- TraceSink (recording) -------------------------------------------
  void load(const void* addr, std::size_t bytes) override;
  void store(const void* addr, std::size_t bytes) override;
  void branch(std::uintptr_t pc, bool taken) override;
  void structural_branches(std::uint64_t n) override;
  void retire(std::uint64_t n) override;

  // --- Introspection ---------------------------------------------------
  const TraceSummary& summary() const { return summary_; }
  TraceBufferStats stats() const;
  bool empty() const { return summary_.events() == 0 && summary_.retired == 0 &&
                              summary_.structural_branches == 0; }

  /// Stable page id of each canonical page ordinal, in first-touch order.
  const std::vector<std::uintptr_t>& page_table() const { return pages_; }

  /// Drop the recorded trace but keep regions, groups and branch-site
  /// identities, so one buffer can record a whole session of
  /// measurements with a stable address vocabulary.
  void clear();

  // --- Replay ----------------------------------------------------------
  /// Re-emit the recorded stream into `sink`.  Memory events replay in
  /// recorded order, then conditional branches in recorded order, then
  /// the structural-branch and retired totals as one bulk call each
  /// (kMemory skips the branch stream and the scalar totals;
  /// kControlFlow skips the memory stream).  Thread-safe: replay is
  /// const and keeps all decode state on the caller's stack, so any
  /// number of threads may replay one buffer concurrently.
  void replay(TraceSink& sink, ReplayClass cls = ReplayClass::kAll,
              ReplayAddressing addressing = ReplayAddressing::kCanonical)
      const;

 private:
  struct Region {
    std::string name;
    std::uintptr_t base = 0;
    std::size_t bytes = 0;
  };
  /// Maximal run of registered pages whose spans intersect.  `stable`
  /// is the stable id of `first_page`.
  struct Group {
    std::uintptr_t first_page = 0;
    std::uintptr_t last_page = 0;
    std::uintptr_t stable = 0;
  };

  void seal_groups();
  std::uintptr_t stable_page_of(std::uintptr_t raw_page);
  std::uintptr_t canonicalize(const void* addr);
  void record_mem(const void* addr, std::size_t bytes, bool is_store);
  static void append_varint(std::vector<std::uint8_t>& out,
                            std::uint64_t value);

  std::vector<Region> regions_;
  std::vector<Group> groups_;  // sorted by first_page once sealed
  bool sealed_ = false;

  // Per-trace state (reset by clear()).
  TraceSummary summary_;
  std::vector<std::uint8_t> mem_stream_;
  std::vector<std::uint8_t> branch_stream_;
  std::uintptr_t last_canonical_ = kCanonicalBase;
  std::unordered_map<std::uintptr_t, std::uint32_t> page_ordinals_;
  std::vector<std::uintptr_t> pages_;  // ordinal -> stable page id
  std::size_t unregistered_pages_ = 0;
  std::size_t last_group_ = 0;  // lookup cache

  // Session state (survives clear()).
  std::unordered_map<std::uintptr_t, std::uint32_t> site_ids_;
  std::vector<std::uintptr_t> site_pcs_;
};

}  // namespace sce::uarch
