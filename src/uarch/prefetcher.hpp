// Stream/stride prefetcher.
//
// Tracks recent miss streams and, once a constant line-stride repeats
// with enough confidence, predicts the next lines of the stream.  This is
// the mechanism (an L2 "streamer") that hides much of a dense kernel's
// compulsory-miss latency on real parts — and, for the side-channel
// story, a structure whose training is itself data-dependent.
#pragma once

#include <cstdint>
#include <vector>

namespace sce::uarch {

struct PrefetcherConfig {
  /// Number of concurrently tracked streams.
  std::size_t streams = 8;
  /// Strides observed before the stream issues prefetches.
  std::uint32_t confidence_threshold = 2;
  /// Lines fetched ahead once confident.
  std::uint32_t degree = 2;
  std::size_t line_bytes = 64;
};

inline bool operator==(const PrefetcherConfig& a, const PrefetcherConfig& b) {
  return a.streams == b.streams &&
         a.confidence_threshold == b.confidence_threshold &&
         a.degree == b.degree && a.line_bytes == b.line_bytes;
}
inline bool operator!=(const PrefetcherConfig& a, const PrefetcherConfig& b) {
  return !(a == b);
}

struct PrefetcherStats {
  std::uint64_t trained = 0;    ///< miss observations fed in
  std::uint64_t issued = 0;     ///< prefetch lines issued
};

class StridePrefetcher {
 public:
  explicit StridePrefetcher(PrefetcherConfig config = {});

  /// Observe a demand miss at `address`; returns the line-aligned
  /// addresses to prefetch (empty while the stream is still training).
  std::vector<std::uintptr_t> observe_miss(std::uintptr_t address);

  const PrefetcherStats& stats() const { return stats_; }
  void flush();
  const PrefetcherConfig& config() const { return config_; }

 private:
  struct Stream {
    std::uintptr_t last_line = 0;
    std::intptr_t stride = 0;
    std::uint32_t confidence = 0;
    bool valid = false;
    std::uint64_t last_used = 0;
  };

  PrefetcherConfig config_;
  PrefetcherStats stats_;
  std::vector<Stream> streams_;
  std::uint64_t tick_ = 0;
};

}  // namespace sce::uarch
