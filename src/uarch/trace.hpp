// The hardware/software contract of the simulated PMU.
//
// Instrumented kernels (sce::nn) report their dynamic memory accesses,
// conditional branches and retired instructions to a TraceSink; the
// microarchitectural models in this library consume that stream to produce
// the same event counts a real PMU would.  The addresses reported are the
// *actual* virtual addresses of the kernel's buffers, so layout, alignment
// and reuse distances are those of the real computation.
#pragma once

#include <cstdint>
#include <vector>

namespace sce::uarch {

/// Receiver of a dynamic execution trace.  Implementations must tolerate
/// arbitrary interleavings; calls are strictly program-ordered.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A data load of `bytes` bytes starting at `addr` (may span lines).
  virtual void load(const void* addr, std::size_t bytes) = 0;
  /// A data store of `bytes` bytes starting at `addr`.
  virtual void store(const void* addr, std::size_t bytes) = 0;
  /// A conditional branch at static site `pc` with outcome `taken`.
  virtual void branch(std::uintptr_t pc, bool taken) = 0;
  /// `n` loop back-edge / structural branches retired in bulk.  These are
  /// perfectly biased (taken) and independent of the data, so models may
  /// count them without simulating each one individually.
  virtual void structural_branches(std::uint64_t n) = 0;
  /// `n` additional (non-branch, non-memory) instructions retired.
  virtual void retire(std::uint64_t n) = 0;

  /// True when every event is provably discarded (NullSink).  Execution
  /// engines use this to skip trace generation entirely — the planned
  /// inference path dispatches to untraced kernel instantiations, which
  /// removes one virtual call per dynamic instruction from prediction
  /// serving while leaving instrumented runs untouched.
  virtual bool discards() const { return false; }
};

/// Discards everything; used by training and un-instrumented runs.
class NullSink final : public TraceSink {
 public:
  void load(const void*, std::size_t) override {}
  void store(const void*, std::size_t) override {}
  void branch(std::uintptr_t, bool) override {}
  void structural_branches(std::uint64_t) override {}
  void retire(std::uint64_t) override {}
  bool discards() const override { return true; }
};

/// Non-virtual no-op sink.  Kernels are templates over the sink type; when
/// a TraceSink reports discards(), layers re-dispatch to an instantiation
/// over this type and the compiler deletes every trace call.  Not a
/// TraceSink on purpose: it must never be passed through a TraceSink&.
struct DiscardSink {
  void load(const void*, std::size_t) {}
  void store(const void*, std::size_t) {}
  void branch(std::uintptr_t, bool) {}
  void structural_branches(std::uint64_t) {}
  void retire(std::uint64_t) {}
};

/// Tallies raw event counts without any microarchitectural model; useful
/// for tests and for characterizing a kernel's instruction mix.
class CountingSink final : public TraceSink {
 public:
  void load(const void*, std::size_t bytes) override {
    ++loads_;
    load_bytes_ += bytes;
  }
  void store(const void*, std::size_t bytes) override {
    ++stores_;
    store_bytes_ += bytes;
  }
  void branch(std::uintptr_t, bool taken) override {
    ++branches_;
    if (taken) ++taken_;
  }
  void structural_branches(std::uint64_t n) override {
    branches_ += n;
    taken_ += n;
  }
  void retire(std::uint64_t n) override { retired_ += n; }

  std::uint64_t loads() const { return loads_; }
  std::uint64_t stores() const { return stores_; }
  std::uint64_t load_bytes() const { return load_bytes_; }
  std::uint64_t store_bytes() const { return store_bytes_; }
  std::uint64_t branches() const { return branches_; }
  std::uint64_t taken_branches() const { return taken_; }
  std::uint64_t retired() const { return retired_; }
  /// Total dynamic instructions: memory ops + branches + other retired.
  std::uint64_t instructions() const {
    return loads_ + stores_ + branches_ + retired_;
  }

 private:
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t load_bytes_ = 0;
  std::uint64_t store_bytes_ = 0;
  std::uint64_t branches_ = 0;
  std::uint64_t taken_ = 0;
  std::uint64_t retired_ = 0;
};

/// Records the full trace for replay/inspection in tests.
class RecordingSink final : public TraceSink {
 public:
  enum class Kind : std::uint8_t {
    kLoad,
    kStore,
    kBranch,
    kStructuralBranches,
    kRetire
  };
  struct Event {
    Kind kind;
    std::uintptr_t address;  // load/store address or branch pc
    std::uint64_t value;     // bytes, taken flag, or retired count
  };

  void load(const void* addr, std::size_t bytes) override {
    events_.push_back(
        {Kind::kLoad, reinterpret_cast<std::uintptr_t>(addr), bytes});
  }
  void store(const void* addr, std::size_t bytes) override {
    events_.push_back(
        {Kind::kStore, reinterpret_cast<std::uintptr_t>(addr), bytes});
  }
  void branch(std::uintptr_t pc, bool taken) override {
    events_.push_back({Kind::kBranch, pc, taken ? 1u : 0u});
  }
  void structural_branches(std::uint64_t n) override {
    events_.push_back({Kind::kStructuralBranches, 0, n});
  }
  void retire(std::uint64_t n) override {
    events_.push_back({Kind::kRetire, 0, n});
  }

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Fans a trace out to several sinks (e.g. a simulated PMU plus a recorder).
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks);

  void load(const void* addr, std::size_t bytes) override;
  void store(const void* addr, std::size_t bytes) override;
  void branch(std::uintptr_t pc, bool taken) override;
  void structural_branches(std::uint64_t n) override;
  void retire(std::uint64_t n) override;

 private:
  std::vector<TraceSink*> sinks_;
};

/// Helper macro giving each instrumented branch site a unique, stable
/// pseudo-PC (the address of a function-local static), so branch
/// predictors can index their tables the way real hardware indexes by
/// instruction address.
#define SCE_BRANCH_SITE()                                      \
  ([]() -> std::uintptr_t {                                    \
    static const char site_anchor = 0;                         \
    return reinterpret_cast<std::uintptr_t>(&site_anchor);     \
  }())

}  // namespace sce::uarch
