// Multi-level data-cache hierarchy with optional next-line prefetcher.
//
// Mirrors the structure behind the perf events the paper monitors:
//   cache-references  = accesses that reach the last-level cache
//   cache-misses      = last-level cache misses
// Each byte-ranged access is decomposed into line-granular accesses that
// walk L1D -> L2 -> LLC.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "uarch/cache.hpp"
#include "uarch/prefetcher.hpp"
#include "uarch/tlb.hpp"

namespace sce::uarch {

struct HierarchyConfig {
  CacheConfig l1d{"L1D", 32 * 1024, 8, 64, ReplacementPolicy::kTreePlru};
  CacheConfig l2{"L2", 256 * 1024, 8, 64, ReplacementPolicy::kLru};
  CacheConfig llc{"LLC", 2 * 1024 * 1024, 16, 64, ReplacementPolicy::kLru};
  bool enable_l2 = true;
  bool enable_llc = true;
  /// Next-line prefetch into L2 on an L1 miss.
  bool enable_next_line_prefetch = false;
  /// Stride/stream prefetcher (L2 streamer) trained by L1 misses.
  bool enable_stride_prefetch = false;
  PrefetcherConfig stride_prefetcher{};
  TlbConfig tlb{};
  bool enable_tlb = true;
  /// Miss latencies in cycles, used by the core event model.
  std::uint32_t l1_hit_cycles = 4;
  std::uint32_t l2_hit_cycles = 12;
  std::uint32_t llc_hit_cycles = 40;
  std::uint32_t memory_cycles = 200;
  std::uint32_t tlb_miss_cycles = 30;
};

/// Field-wise equality: two hierarchies with equal configs produce
/// identical counts from identical access sequences (the sweep engine's
/// deduplication criterion).
inline bool operator==(const HierarchyConfig& a, const HierarchyConfig& b) {
  return a.l1d == b.l1d && a.l2 == b.l2 && a.llc == b.llc &&
         a.enable_l2 == b.enable_l2 && a.enable_llc == b.enable_llc &&
         a.enable_next_line_prefetch == b.enable_next_line_prefetch &&
         a.enable_stride_prefetch == b.enable_stride_prefetch &&
         a.stride_prefetcher == b.stride_prefetcher && a.tlb == b.tlb &&
         a.enable_tlb == b.enable_tlb && a.l1_hit_cycles == b.l1_hit_cycles &&
         a.l2_hit_cycles == b.l2_hit_cycles &&
         a.llc_hit_cycles == b.llc_hit_cycles &&
         a.memory_cycles == b.memory_cycles &&
         a.tlb_miss_cycles == b.tlb_miss_cycles;
}
inline bool operator!=(const HierarchyConfig& a, const HierarchyConfig& b) {
  return !(a == b);
}

struct AccessResult {
  /// Cycles this access contributed (latency model, not overlap-aware).
  std::uint64_t cycles = 0;
  /// Number of line-granular accesses the byte range decomposed into.
  std::uint32_t lines_touched = 0;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(HierarchyConfig config = {},
                           std::uint64_t rng_seed = 11);

  const HierarchyConfig& config() const { return config_; }

  /// Perform a data access covering [addr, addr + bytes).
  AccessResult access(std::uintptr_t addr, std::size_t bytes, bool is_write);

  const CacheStats& l1d_stats() const { return l1d_->stats(); }
  const CacheStats& l2_stats() const;
  const CacheStats& llc_stats() const;
  const TlbStats& tlb_stats() const { return tlb_.stats(); }
  const PrefetcherStats& prefetcher_stats() const {
    return stride_prefetcher_.stats();
  }

  CacheLevel& l1d() { return *l1d_; }
  CacheLevel* l2() { return l2_.get(); }
  CacheLevel* llc() { return llc_.get(); }

  /// References that reached the last enabled level (perf cache-references).
  std::uint64_t last_level_references() const;
  /// Misses at the last enabled level (perf cache-misses).
  std::uint64_t last_level_misses() const;

  /// Invalidate all levels (cold start).
  void flush_all();
  /// Evict `n` random lines from every level (cache pollution by other
  /// processes sharing the machine).
  void pollute(std::size_t n, util::Rng& rng);

  void reset_stats();

 private:
  AccessResult access_line(std::uintptr_t line_addr, bool is_write);

  HierarchyConfig config_;
  std::unique_ptr<CacheLevel> l1d_;
  std::unique_ptr<CacheLevel> l2_;
  std::unique_ptr<CacheLevel> llc_;
  Tlb tlb_;
  StridePrefetcher stride_prefetcher_;
  CacheStats empty_stats_{};
};

}  // namespace sce::uarch
