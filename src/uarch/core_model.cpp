#include "uarch/core_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sce::uarch {

DerivedCycles derive_cycles(const CoreModelConfig& config,
                            const CoreCounts& counts) {
  if (!(config.base_cpi > 0.0))
    throw InvalidArgument("derive_cycles: base_cpi must be positive");
  if (!(config.core_over_ref > 0.0) || !(config.ref_over_bus > 0.0))
    throw InvalidArgument("derive_cycles: frequency ratios must be positive");
  DerivedCycles d;
  const double cycles =
      static_cast<double>(counts.instructions) * config.base_cpi +
      static_cast<double>(counts.memory_cycles) +
      static_cast<double>(counts.mispredicts) *
          static_cast<double>(config.branch_mispredict_cycles);
  d.cycles = static_cast<std::uint64_t>(std::llround(cycles));
  d.ref_cycles = static_cast<std::uint64_t>(
      std::llround(cycles / config.core_over_ref));
  d.bus_cycles = static_cast<std::uint64_t>(
      std::llround(cycles / config.core_over_ref / config.ref_over_bus));
  return d;
}

}  // namespace sce::uarch
