// Simple set-associative data TLB model.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sce::uarch {

struct TlbConfig {
  std::size_t entries = 64;
  std::size_t associativity = 4;
  std::size_t page_bytes = 4096;
};

inline bool operator==(const TlbConfig& a, const TlbConfig& b) {
  return a.entries == b.entries && a.associativity == b.associativity &&
         a.page_bytes == b.page_bytes;
}
inline bool operator!=(const TlbConfig& a, const TlbConfig& b) {
  return !(a == b);
}

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig config = {}, std::uint64_t rng_seed = 13);

  /// Translate the page containing `address`; returns true on TLB hit.
  bool access(std::uintptr_t address);

  const TlbStats& stats() const { return stats_; }
  const TlbConfig& config() const { return config_; }

  void flush();
  void reset_stats() { stats_ = TlbStats{}; }

 private:
  struct Entry {
    std::uintptr_t page = 0;
    bool valid = false;
    std::uint64_t stamp = 0;
  };

  TlbConfig config_;
  TlbStats stats_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t num_sets_ = 1;
};

}  // namespace sce::uarch
