#include "uarch/tlb.hpp"

#include "util/error.hpp"

namespace sce::uarch {

namespace {
bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Tlb::Tlb(TlbConfig config, std::uint64_t /*rng_seed*/)
    : config_(config) {
  if (config_.associativity == 0 || config_.entries == 0)
    throw InvalidArgument("Tlb: entries and associativity must be positive");
  if (config_.entries % config_.associativity != 0)
    throw InvalidArgument("Tlb: entries must be a multiple of associativity");
  if (!is_power_of_two(config_.page_bytes))
    throw InvalidArgument("Tlb: page size must be a power of two");
  num_sets_ = config_.entries / config_.associativity;
  if (!is_power_of_two(num_sets_))
    throw InvalidArgument("Tlb: set count must be a power of two");
  entries_.assign(config_.entries, Entry{});
}

bool Tlb::access(std::uintptr_t address) {
  ++stats_.accesses;
  const std::uintptr_t page = address / config_.page_bytes;
  const std::size_t set = static_cast<std::size_t>(page) & (num_sets_ - 1);
  Entry* base = &entries_[set * config_.associativity];
  for (std::size_t i = 0; i < config_.associativity; ++i) {
    if (base[i].valid && base[i].page == page) {
      ++stats_.hits;
      base[i].stamp = ++tick_;
      return true;
    }
  }
  ++stats_.misses;
  // LRU replacement within the set; invalid entries first.
  std::size_t victim = 0;
  for (std::size_t i = 0; i < config_.associativity; ++i) {
    if (!base[i].valid) {
      victim = i;
      break;
    }
    if (base[i].stamp < base[victim].stamp) victim = i;
  }
  base[victim] = Entry{page, true, ++tick_};
  return false;
}

void Tlb::flush() {
  for (Entry& e : entries_) e = Entry{};
}

}  // namespace sce::uarch
