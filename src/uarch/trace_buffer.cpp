#include "uarch/trace_buffer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sce::uarch {

namespace {

constexpr std::uintptr_t kPageBits = 12;
constexpr std::uintptr_t kPageOffsetMask = (std::uintptr_t{1} << kPageBits) - 1;

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::uint64_t read_varint(const std::uint8_t* data, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

}  // namespace

void TraceBuffer::append_varint(std::vector<std::uint8_t>& out,
                                std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::size_t TraceBuffer::register_region(std::string name, const void* base,
                                         std::size_t bytes) {
  if (sealed_)
    throw InvalidArgument(
        "TraceBuffer::register_region: recording already started; regions "
        "must be declared before the first event");
  if (base == nullptr && bytes > 0)
    throw InvalidArgument("TraceBuffer::register_region: null base");
  regions_.push_back(
      {std::move(name), reinterpret_cast<std::uintptr_t>(base), bytes});
  return regions_.size() - 1;
}

void TraceBuffer::seal_groups() {
  // Coalesce the registered regions' page intervals into maximal
  // intersecting runs and hand each run a dense range of stable ids.
  // The result is a pure function of the registered (base, bytes) pairs,
  // and preserves page sharing exactly: raw pages p and q map to the
  // same stable id iff p == q.
  std::vector<std::pair<std::uintptr_t, std::uintptr_t>> spans;
  spans.reserve(regions_.size());
  for (const Region& r : regions_) {
    if (r.bytes == 0) continue;
    spans.emplace_back(r.base >> kPageBits, (r.base + r.bytes - 1) >> kPageBits);
  }
  std::sort(spans.begin(), spans.end());
  std::uintptr_t next_stable = kStablePageBase;
  for (const auto& [first, last] : spans) {
    if (!groups_.empty() && first <= groups_.back().last_page) {
      Group& g = groups_.back();
      g.last_page = std::max(g.last_page, last);
      continue;
    }
    groups_.push_back({first, last, next_stable});
    next_stable += last - first + 1;
  }
  // Re-derive stable bases after merging (a merge may have grown a span).
  next_stable = kStablePageBase;
  for (Group& g : groups_) {
    g.stable = next_stable;
    next_stable += g.last_page - g.first_page + 1;
  }
  sealed_ = true;
}

std::uintptr_t TraceBuffer::stable_page_of(std::uintptr_t raw_page) {
  if (!groups_.empty()) {
    // Last-hit cache: kernel address streams are strongly local.
    const Group& cached = groups_[last_group_];
    if (raw_page >= cached.first_page && raw_page <= cached.last_page)
      return cached.stable + (raw_page - cached.first_page);
    auto it = std::upper_bound(
        groups_.begin(), groups_.end(), raw_page,
        [](std::uintptr_t page, const Group& g) { return page < g.first_page; });
    if (it != groups_.begin()) {
      --it;
      if (raw_page >= it->first_page && raw_page <= it->last_page) {
        last_group_ = static_cast<std::size_t>(it - groups_.begin());
        return it->stable + (raw_page - it->first_page);
      }
    }
  }
  return raw_page;  // unregistered fallback: raw page is the stable id
}

std::uintptr_t TraceBuffer::canonicalize(const void* addr) {
  if (!sealed_) seal_groups();
  const auto raw = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t stable = stable_page_of(raw >> kPageBits);
  const auto [it, inserted] = page_ordinals_.try_emplace(
      stable, static_cast<std::uint32_t>(pages_.size()));
  if (inserted) {
    pages_.push_back(stable);
    if (stable < kStablePageBase) ++unregistered_pages_;
  }
  return kCanonicalBase +
         (static_cast<std::uintptr_t>(it->second) << kPageBits) +
         (raw & kPageOffsetMask);
}

void TraceBuffer::record_mem(const void* addr, std::size_t bytes,
                             bool is_store) {
  const std::uintptr_t canonical = canonicalize(addr);
  const auto delta = static_cast<std::int64_t>(canonical) -
                     static_cast<std::int64_t>(last_canonical_);
  last_canonical_ = canonical;
  // Header: zigzag(delta) in the high bits, store flag in bit 1, and a
  // "4-byte access" flag in bit 0 (float kernels make 4 the overwhelming
  // size; other sizes append an explicit varint).
  const std::uint64_t header =
      (zigzag(delta) << 2) | (std::uint64_t{is_store} << 1) |
      std::uint64_t{bytes == 4};
  append_varint(mem_stream_, header);
  if (bytes != 4) append_varint(mem_stream_, bytes);
}

void TraceBuffer::load(const void* addr, std::size_t bytes) {
  ++summary_.loads;
  summary_.load_bytes += bytes;
  record_mem(addr, bytes, false);
}

void TraceBuffer::store(const void* addr, std::size_t bytes) {
  ++summary_.stores;
  summary_.store_bytes += bytes;
  record_mem(addr, bytes, true);
}

void TraceBuffer::branch(std::uintptr_t pc, bool taken) {
  if (!sealed_) seal_groups();
  ++summary_.conditional_branches;
  if (taken) ++summary_.taken_branches;
  const auto [it, inserted] = site_ids_.try_emplace(
      pc, static_cast<std::uint32_t>(site_pcs_.size()));
  if (inserted) site_pcs_.push_back(pc);
  append_varint(branch_stream_,
                (static_cast<std::uint64_t>(it->second) << 1) |
                    std::uint64_t{taken});
}

void TraceBuffer::structural_branches(std::uint64_t n) {
  if (!sealed_) seal_groups();
  summary_.structural_branches += n;
}

void TraceBuffer::retire(std::uint64_t n) {
  if (!sealed_) seal_groups();
  summary_.retired += n;
}

TraceBufferStats TraceBuffer::stats() const {
  TraceBufferStats s;
  s.events = summary_.events();
  s.encoded_bytes = mem_stream_.size() + branch_stream_.size();
  s.regions = regions_.size();
  s.relocation_groups = groups_.size();
  s.pages_touched = pages_.size();
  s.unregistered_pages = unregistered_pages_;
  s.branch_sites = site_pcs_.size();
  return s;
}

void TraceBuffer::clear() {
  summary_ = TraceSummary{};
  mem_stream_.clear();
  branch_stream_.clear();
  last_canonical_ = kCanonicalBase;
  page_ordinals_.clear();
  pages_.clear();
  unregistered_pages_ = 0;
}

void TraceBuffer::replay(TraceSink& sink, ReplayClass cls,
                         ReplayAddressing addressing) const {
  if (cls != ReplayClass::kControlFlow) {
    const std::uint8_t* data = mem_stream_.data();
    const std::size_t end = mem_stream_.size();
    std::size_t pos = 0;
    std::uintptr_t canonical = kCanonicalBase;
    while (pos < end) {
      const std::uint64_t header = read_varint(data, pos);
      canonical = static_cast<std::uintptr_t>(
          static_cast<std::int64_t>(canonical) + unzigzag(header >> 2));
      const std::size_t bytes =
          (header & 1) ? 4 : static_cast<std::size_t>(read_varint(data, pos));
      std::uintptr_t addr = canonical;
      if (addressing == ReplayAddressing::kSessionStable) {
        const std::uintptr_t ordinal = (canonical - kCanonicalBase) >> kPageBits;
        addr = (pages_[ordinal] << kPageBits) | (canonical & kPageOffsetMask);
      }
      if (header & 2)
        sink.store(reinterpret_cast<const void*>(addr), bytes);
      else
        sink.load(reinterpret_cast<const void*>(addr), bytes);
    }
  }
  if (cls != ReplayClass::kMemory) {
    const std::uint8_t* data = branch_stream_.data();
    const std::size_t end = branch_stream_.size();
    std::size_t pos = 0;
    while (pos < end) {
      const std::uint64_t event = read_varint(data, pos);
      sink.branch(site_pcs_[event >> 1], (event & 1) != 0);
    }
    if (summary_.structural_branches != 0)
      sink.structural_branches(summary_.structural_branches);
    if (summary_.retired != 0) sink.retire(summary_.retired);
  }
}

}  // namespace sce::uarch
