#include "uarch/cache.hpp"

#include "util/error.hpp"

namespace sce::uarch {

std::string to_string(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kTreePlru:
      return "tree-plru";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kRandom:
      return "random";
  }
  return "?";
}

namespace {
bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(CacheConfig config, std::uint64_t rng_seed)
    : config_(std::move(config)), rng_(rng_seed) {
  if (!is_power_of_two(config_.line_bytes))
    throw InvalidArgument("CacheLevel: line size must be a power of two");
  if (config_.associativity == 0)
    throw InvalidArgument("CacheLevel: associativity must be positive");
  if (config_.size_bytes %
          (config_.associativity * config_.line_bytes) !=
      0)
    throw InvalidArgument(
        "CacheLevel: size must be a multiple of associativity * line size");
  const std::size_t sets = config_.num_sets();
  if (!is_power_of_two(sets))
    throw InvalidArgument("CacheLevel: number of sets must be a power of two");
  if (config_.associativity > 64)
    throw InvalidArgument("CacheLevel: associativity > 64 unsupported");
  ways_.assign(sets * config_.associativity, Way{});
  plru_.assign(sets, 0);
}

std::uintptr_t CacheLevel::line_of(std::uintptr_t address) const {
  return address / config_.line_bytes;
}

std::size_t CacheLevel::set_of(std::uintptr_t line) const {
  return static_cast<std::size_t>(line) & (config_.num_sets() - 1);
}

void CacheLevel::touch(std::size_t set, std::size_t way) {
  Way& w = ways_[set * config_.associativity + way];
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
      w.lru_stamp = ++tick_;
      break;
    case ReplacementPolicy::kFifo:
      // FIFO does not update on hit; the stamp is set at install time.
      break;
    case ReplacementPolicy::kTreePlru: {
      // Walk the tree from root to this way, pointing each node away from
      // the path taken (the classic PLRU promotion).
      std::uint64_t& bits = plru_[set];
      std::size_t node = 0;
      std::size_t lo = 0;
      std::size_t hi = config_.associativity;
      while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (way < mid) {
          bits |= (std::uint64_t{1} << node);  // point right (away)
          hi = mid;
          node = 2 * node + 1;
        } else {
          bits &= ~(std::uint64_t{1} << node);  // point left (away)
          lo = mid;
          node = 2 * node + 2;
        }
      }
      break;
    }
    case ReplacementPolicy::kRandom:
      break;
  }
}

std::size_t CacheLevel::choose_victim(std::size_t set) {
  const std::size_t assoc = config_.associativity;
  Way* base = &ways_[set * assoc];
  // Prefer an invalid way regardless of policy.
  for (std::size_t i = 0; i < assoc; ++i)
    if (!base[i].valid) return i;
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < assoc; ++i)
        if (base[i].lru_stamp < base[victim].lru_stamp) victim = i;
      return victim;
    }
    case ReplacementPolicy::kTreePlru: {
      // Convention: bit set means the left half was used more recently, so
      // the victim search descends right; bit clear descends left.  touch()
      // maintains the same convention.
      const std::uint64_t bits = plru_[set];
      std::size_t node = 0;
      std::size_t lo = 0;
      std::size_t hi = assoc;
      while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (bits & (std::uint64_t{1} << node)) {
          lo = mid;  // bit set -> victim on the right
          node = 2 * node + 2;
        } else {
          hi = mid;  // bit clear -> victim on the left
          node = 2 * node + 1;
        }
      }
      return lo;
    }
    case ReplacementPolicy::kRandom:
      return static_cast<std::size_t>(rng_.below(assoc));
  }
  return 0;
}

bool CacheLevel::access(std::uintptr_t address, bool is_write) {
  ++stats_.accesses;
  const std::uintptr_t line = line_of(address);
  const std::size_t set = set_of(line);
  const std::size_t assoc = config_.associativity;
  Way* base = &ways_[set * assoc];
  for (std::size_t i = 0; i < assoc; ++i) {
    if (base[i].valid && base[i].tag == line) {
      ++stats_.hits;
      if (is_write) base[i].dirty = true;
      touch(set, i);
      return true;
    }
  }
  ++stats_.misses;
  const std::size_t victim = choose_victim(set);
  Way& w = base[victim];
  if (w.valid) {
    ++stats_.evictions;
    if (w.dirty) ++stats_.writebacks;
  }
  w.tag = line;
  w.valid = true;
  w.dirty = is_write;
  w.lru_stamp = ++tick_;  // install time (LRU and FIFO both stamp here)
  touch(set, victim);
  return false;
}

bool CacheLevel::contains(std::uintptr_t address) const {
  const std::uintptr_t line = line_of(address);
  const std::size_t set = set_of(line);
  const Way* base = &ways_[set * config_.associativity];
  for (std::size_t i = 0; i < config_.associativity; ++i)
    if (base[i].valid && base[i].tag == line) return true;
  return false;
}

void CacheLevel::flush() {
  for (Way& w : ways_) w = Way{};
  for (auto& bits : plru_) bits = 0;
}

void CacheLevel::evict_random_line(util::Rng& rng) {
  // Pick a random set/way outside the protected partition; if valid,
  // invalidate it (models a co-tenant displacing a line).
  if (config_.protected_ways >= config_.associativity) return;
  const std::size_t sets = config_.num_sets();
  const std::size_t unprotected =
      config_.associativity - config_.protected_ways;
  const std::size_t set = static_cast<std::size_t>(rng.below(sets));
  const std::size_t way =
      config_.protected_ways +
      static_cast<std::size_t>(rng.below(unprotected));
  Way& w = ways_[set * config_.associativity + way];
  if (w.valid) {
    w = Way{};
  }
}

}  // namespace sce::uarch
