// Set-associative cache model with pluggable replacement policies.
//
// One CacheLevel models a single level (L1D, L2, LLC).  The model tracks
// tags only — no data — which is all that is needed to count references,
// hits and misses.  Replacement policies implemented: true LRU, tree-PLRU
// (the policy used by most Intel L1/L2 caches), FIFO and random.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sce::uarch {

enum class ReplacementPolicy { kLru, kTreePlru, kFifo, kRandom };

std::string to_string(ReplacementPolicy policy);

struct CacheConfig {
  std::string name = "cache";
  std::size_t size_bytes = 32 * 1024;
  std::size_t associativity = 8;
  std::size_t line_bytes = 64;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  /// Way-partitioning (Intel CAT style): the first `protected_ways` ways
  /// of every set are reserved for the measured process — co-tenant
  /// evictions (evict_random_line) cannot touch them.  0 disables
  /// partitioning.  The process's own replacement is unaffected.
  std::size_t protected_ways = 0;

  std::size_t num_sets() const {
    return size_bytes / (associativity * line_bytes);
  }
};

/// Field-wise equality, used by the sweep engine to deduplicate grid
/// points that share a cache geometry.
inline bool operator==(const CacheConfig& a, const CacheConfig& b) {
  return a.name == b.name && a.size_bytes == b.size_bytes &&
         a.associativity == b.associativity && a.line_bytes == b.line_bytes &&
         a.policy == b.policy && a.protected_ways == b.protected_ways;
}
inline bool operator!=(const CacheConfig& a, const CacheConfig& b) {
  return !(a == b);
}

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double miss_rate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config, std::uint64_t rng_seed = 7);

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }

  /// Access the line containing `line_address` (an address already shifted
  /// to line granularity is not required; any byte address works).
  /// Returns true on hit.  On miss the line is installed, possibly
  /// evicting another.
  bool access(std::uintptr_t address, bool is_write);

  /// Probe without updating state or stats (for tests/inspection).
  bool contains(std::uintptr_t address) const;

  /// Invalidate everything (models a cold start / context switch flush).
  void flush();

  /// Evict one random resident line if any (models interference from other
  /// processes sharing the cache).
  void evict_random_line(util::Rng& rng);

  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Way {
    std::uintptr_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru_stamp = 0;   // for kLru / kFifo
  };

  std::uintptr_t line_of(std::uintptr_t address) const;
  std::size_t set_of(std::uintptr_t line) const;
  std::size_t choose_victim(std::size_t set);
  void touch(std::size_t set, std::size_t way);

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Way> ways_;              // num_sets * associativity
  std::vector<std::uint64_t> plru_;    // one PLRU tree bitmask per set
  std::uint64_t tick_ = 0;
  util::Rng rng_;
};

}  // namespace sce::uarch
