#include "uarch/prefetcher.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace sce::uarch {

StridePrefetcher::StridePrefetcher(PrefetcherConfig config)
    : config_(config) {
  if (config_.streams == 0)
    throw InvalidArgument("StridePrefetcher: need at least one stream");
  if (config_.line_bytes == 0 ||
      (config_.line_bytes & (config_.line_bytes - 1)) != 0)
    throw InvalidArgument("StridePrefetcher: line size must be power of two");
  streams_.assign(config_.streams, Stream{});
}

std::vector<std::uintptr_t> StridePrefetcher::observe_miss(
    std::uintptr_t address) {
  ++stats_.trained;
  ++tick_;
  const std::uintptr_t line =
      address / config_.line_bytes;

  // Find the stream whose extrapolation this miss continues: either one
  // line after its last access, or matching its learned stride.
  Stream* match = nullptr;
  for (Stream& s : streams_) {
    if (!s.valid) continue;
    const std::intptr_t delta = static_cast<std::intptr_t>(line) -
                                static_cast<std::intptr_t>(s.last_line);
    if (delta == 0) continue;
    if ((s.confidence > 0 && delta == s.stride) ||
        (s.confidence == 0 && std::abs(static_cast<long long>(delta)) <= 4)) {
      match = &s;
      break;
    }
  }

  std::vector<std::uintptr_t> prefetches;
  if (match != nullptr) {
    const std::intptr_t delta = static_cast<std::intptr_t>(line) -
                                static_cast<std::intptr_t>(match->last_line);
    if (match->confidence > 0 && delta == match->stride) {
      ++match->confidence;
    } else {
      match->stride = delta;
      match->confidence = 1;
    }
    match->last_line = line;
    match->last_used = tick_;
    if (match->confidence >= config_.confidence_threshold) {
      for (std::uint32_t k = 1; k <= config_.degree; ++k) {
        const std::intptr_t target =
            static_cast<std::intptr_t>(line) +
            match->stride * static_cast<std::intptr_t>(k);
        if (target <= 0) continue;
        prefetches.push_back(static_cast<std::uintptr_t>(target) *
                             config_.line_bytes);
      }
      stats_.issued += prefetches.size();
    }
    return prefetches;
  }

  // Allocate a stream (LRU victim) to start tracking this address.
  Stream* victim = &streams_[0];
  for (Stream& s : streams_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
    if (s.last_used < victim->last_used) victim = &s;
  }
  *victim = Stream{line, 0, 0, true, tick_};
  return prefetches;
}

void StridePrefetcher::flush() {
  for (Stream& s : streams_) s = Stream{};
  tick_ = 0;
}

}  // namespace sce::uarch
