#include "uarch/trace.hpp"

#include "util/error.hpp"

namespace sce::uarch {

TeeSink::TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {
  for (TraceSink* s : sinks_)
    if (s == nullptr) throw InvalidArgument("TeeSink: null sink");
}

void TeeSink::load(const void* addr, std::size_t bytes) {
  for (TraceSink* s : sinks_) s->load(addr, bytes);
}
void TeeSink::store(const void* addr, std::size_t bytes) {
  for (TraceSink* s : sinks_) s->store(addr, bytes);
}
void TeeSink::branch(std::uintptr_t pc, bool taken) {
  for (TraceSink* s : sinks_) s->branch(pc, taken);
}
void TeeSink::structural_branches(std::uint64_t n) {
  for (TraceSink* s : sinks_) s->structural_branches(n);
}

void TeeSink::retire(std::uint64_t n) {
  for (TraceSink* s : sinks_) s->retire(n);
}

}  // namespace sce::uarch
