#include "uarch/hierarchy.hpp"

#include "util/error.hpp"

namespace sce::uarch {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      tlb_(config_.tlb, seed ^ 0x71B0ULL),
      stride_prefetcher_(config_.stride_prefetcher) {
  l1d_ = std::make_unique<CacheLevel>(config_.l1d, seed);
  if (config_.enable_l2)
    l2_ = std::make_unique<CacheLevel>(config_.l2, seed + 1);
  if (config_.enable_llc)
    llc_ = std::make_unique<CacheLevel>(config_.llc, seed + 2);
}

const CacheStats& MemoryHierarchy::l2_stats() const {
  return l2_ ? l2_->stats() : empty_stats_;
}

const CacheStats& MemoryHierarchy::llc_stats() const {
  return llc_ ? llc_->stats() : empty_stats_;
}

AccessResult MemoryHierarchy::access_line(std::uintptr_t line_addr,
                                          bool is_write) {
  AccessResult r;
  r.lines_touched = 1;
  if (config_.enable_tlb) {
    if (!tlb_.access(line_addr)) r.cycles += config_.tlb_miss_cycles;
  }
  if (l1d_->access(line_addr, is_write)) {
    r.cycles += config_.l1_hit_cycles;
    return r;
  }
  if (config_.enable_next_line_prefetch && l2_) {
    // Fetch the next line into L2 (and LLC) without charging latency.
    const std::uintptr_t next = line_addr + config_.l1d.line_bytes;
    if (!l2_->access(next, false) && llc_) llc_->access(next, false);
  }
  if (config_.enable_stride_prefetch && l2_) {
    // The L2 streamer trains on demand misses and pulls predicted lines
    // into L2/LLC without charging demand latency.
    for (std::uintptr_t target : stride_prefetcher_.observe_miss(line_addr)) {
      if (!l2_->access(target, false) && llc_) llc_->access(target, false);
    }
  }
  if (l2_) {
    if (l2_->access(line_addr, is_write)) {
      r.cycles += config_.l2_hit_cycles;
      return r;
    }
  }
  if (llc_) {
    if (llc_->access(line_addr, is_write)) {
      r.cycles += config_.llc_hit_cycles;
      return r;
    }
  }
  r.cycles += config_.memory_cycles;
  return r;
}

AccessResult MemoryHierarchy::access(std::uintptr_t addr, std::size_t bytes,
                                     bool is_write) {
  if (bytes == 0) throw InvalidArgument("MemoryHierarchy::access: zero bytes");
  const std::size_t line = config_.l1d.line_bytes;
  const std::uintptr_t first = addr / line;
  const std::uintptr_t last = (addr + bytes - 1) / line;
  AccessResult total;
  for (std::uintptr_t l = first; l <= last; ++l) {
    const AccessResult r = access_line(l * line, is_write);
    total.cycles += r.cycles;
    total.lines_touched += r.lines_touched;
  }
  return total;
}

std::uint64_t MemoryHierarchy::last_level_references() const {
  if (llc_) return llc_->stats().accesses;
  if (l2_) return l2_->stats().accesses;
  return l1d_->stats().accesses;
}

std::uint64_t MemoryHierarchy::last_level_misses() const {
  if (llc_) return llc_->stats().misses;
  if (l2_) return l2_->stats().misses;
  return l1d_->stats().misses;
}

void MemoryHierarchy::flush_all() {
  l1d_->flush();
  if (l2_) l2_->flush();
  if (llc_) llc_->flush();
  tlb_.flush();
  stride_prefetcher_.flush();
}

void MemoryHierarchy::pollute(std::size_t n, util::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    l1d_->evict_random_line(rng);
    if (l2_) l2_->evict_random_line(rng);
    if (llc_) llc_->evict_random_line(rng);
  }
}

void MemoryHierarchy::reset_stats() {
  l1d_->reset_stats();
  if (l2_) l2_->reset_stats();
  if (llc_) llc_->reset_stats();
  tlb_.reset_stats();
}

}  // namespace sce::uarch
