// Dynamic branch-prediction models.
//
// The perf events `branches` and `branch-misses` in the paper come from a
// real Intel front end; these models supply the same two counters from the
// instrumented kernel trace.  GShare is the default (closest in behaviour
// to a modern global-history predictor at this scale); bimodal, two-level
// local and static models support the ablation benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sce::uarch {

struct BranchStats {
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t taken = 0;

  double mispredict_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(mispredicts) /
                               static_cast<double>(branches);
  }
};

class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Record the resolution of a conditional branch; updates internal state
  /// and the stats counters.
  void resolve(std::uintptr_t pc, bool taken);

  const BranchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BranchStats{}; }
  /// Clear all learned state (cold start).
  virtual void flush() = 0;
  virtual std::string name() const = 0;

 protected:
  virtual bool predict(std::uintptr_t pc) = 0;
  virtual void update(std::uintptr_t pc, bool taken) = 0;

 private:
  BranchStats stats_;
};

/// Always predicts taken (the paper-era static baseline).
class StaticTakenPredictor final : public BranchPredictor {
 public:
  void flush() override {}
  std::string name() const override { return "static-taken"; }

 protected:
  bool predict(std::uintptr_t) override { return true; }
  void update(std::uintptr_t, bool) override {}
};

/// Per-PC table of 2-bit saturating counters.
class BimodalPredictor final : public BranchPredictor {
 public:
  explicit BimodalPredictor(std::size_t table_bits = 12);
  void flush() override;
  std::string name() const override { return "bimodal"; }

 protected:
  bool predict(std::uintptr_t pc) override;
  void update(std::uintptr_t pc, bool taken) override;

 private:
  std::size_t index(std::uintptr_t pc) const;
  std::vector<std::uint8_t> table_;
  std::size_t mask_;
};

/// Global-history XOR PC indexed 2-bit counters (McFarling's gshare).
class GSharePredictor final : public BranchPredictor {
 public:
  explicit GSharePredictor(std::size_t table_bits = 14,
                           std::size_t history_bits = 12);
  void flush() override;
  std::string name() const override { return "gshare"; }

 protected:
  bool predict(std::uintptr_t pc) override;
  void update(std::uintptr_t pc, bool taken) override;

 private:
  std::size_t index(std::uintptr_t pc) const;
  std::vector<std::uint8_t> table_;
  std::size_t mask_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

/// Two-level predictor with per-branch local history (PAg-style).
class TwoLevelLocalPredictor final : public BranchPredictor {
 public:
  explicit TwoLevelLocalPredictor(std::size_t history_table_bits = 10,
                                  std::size_t history_bits = 8);
  void flush() override;
  std::string name() const override { return "two-level-local"; }

 protected:
  bool predict(std::uintptr_t pc) override;
  void update(std::uintptr_t pc, bool taken) override;

 private:
  std::vector<std::uint16_t> histories_;
  std::vector<std::uint8_t> counters_;
  std::size_t history_mask_entries_;
  std::uint16_t history_value_mask_;
};

enum class PredictorKind { kStaticTaken, kBimodal, kGShare, kTwoLevelLocal };

std::string to_string(PredictorKind kind);
std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind);

}  // namespace sce::uarch
