#include "uarch/branch_predictor.hpp"

#include "util/error.hpp"

namespace sce::uarch {

namespace {
// 2-bit saturating counter helpers: 0,1 predict not-taken; 2,3 taken.
bool counter_predicts_taken(std::uint8_t c) { return c >= 2; }
std::uint8_t counter_update(std::uint8_t c, bool taken) {
  if (taken) return c < 3 ? static_cast<std::uint8_t>(c + 1) : c;
  return c > 0 ? static_cast<std::uint8_t>(c - 1) : c;
}
// Mix the low bits of a pseudo-PC (they are addresses of statics, so the
// low bits are poorly distributed without mixing).
std::size_t mix_pc(std::uintptr_t pc) {
  std::uint64_t z = static_cast<std::uint64_t>(pc);
  z = (z ^ (z >> 16)) * 0x45D9F3B3335B369ULL;
  return static_cast<std::size_t>(z ^ (z >> 32));
}
}  // namespace

void BranchPredictor::resolve(std::uintptr_t pc, bool taken) {
  const bool predicted = predict(pc);
  ++stats_.branches;
  if (taken) ++stats_.taken;
  if (predicted != taken) ++stats_.mispredicts;
  update(pc, taken);
}

BimodalPredictor::BimodalPredictor(std::size_t table_bits) {
  if (table_bits == 0 || table_bits > 24)
    throw InvalidArgument("BimodalPredictor: table_bits out of range");
  table_.assign(std::size_t{1} << table_bits, 1);  // weakly not-taken
  mask_ = table_.size() - 1;
}

std::size_t BimodalPredictor::index(std::uintptr_t pc) const {
  return mix_pc(pc) & mask_;
}

bool BimodalPredictor::predict(std::uintptr_t pc) {
  return counter_predicts_taken(table_[index(pc)]);
}

void BimodalPredictor::update(std::uintptr_t pc, bool taken) {
  auto& c = table_[index(pc)];
  c = counter_update(c, taken);
}

void BimodalPredictor::flush() {
  for (auto& c : table_) c = 1;
}

GSharePredictor::GSharePredictor(std::size_t table_bits,
                                 std::size_t history_bits) {
  if (table_bits == 0 || table_bits > 24)
    throw InvalidArgument("GSharePredictor: table_bits out of range");
  if (history_bits > 63)
    throw InvalidArgument("GSharePredictor: history_bits out of range");
  table_.assign(std::size_t{1} << table_bits, 1);
  mask_ = table_.size() - 1;
  history_mask_ = (history_bits == 0)
                      ? 0
                      : ((std::uint64_t{1} << history_bits) - 1);
}

std::size_t GSharePredictor::index(std::uintptr_t pc) const {
  return (mix_pc(pc) ^ static_cast<std::size_t>(history_)) & mask_;
}

bool GSharePredictor::predict(std::uintptr_t pc) {
  return counter_predicts_taken(table_[index(pc)]);
}

void GSharePredictor::update(std::uintptr_t pc, bool taken) {
  auto& c = table_[index(pc)];
  c = counter_update(c, taken);
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

void GSharePredictor::flush() {
  for (auto& c : table_) c = 1;
  history_ = 0;
}

TwoLevelLocalPredictor::TwoLevelLocalPredictor(std::size_t history_table_bits,
                                               std::size_t history_bits) {
  if (history_table_bits == 0 || history_table_bits > 20)
    throw InvalidArgument(
        "TwoLevelLocalPredictor: history_table_bits out of range");
  if (history_bits == 0 || history_bits > 14)
    throw InvalidArgument("TwoLevelLocalPredictor: history_bits out of range");
  histories_.assign(std::size_t{1} << history_table_bits, 0);
  counters_.assign(std::size_t{1} << history_bits, 1);
  history_mask_entries_ = histories_.size() - 1;
  history_value_mask_ =
      static_cast<std::uint16_t>((std::size_t{1} << history_bits) - 1);
}

bool TwoLevelLocalPredictor::predict(std::uintptr_t pc) {
  const std::uint16_t hist =
      histories_[mix_pc(pc) & history_mask_entries_];
  return counter_predicts_taken(counters_[hist]);
}

void TwoLevelLocalPredictor::update(std::uintptr_t pc, bool taken) {
  std::uint16_t& hist = histories_[mix_pc(pc) & history_mask_entries_];
  auto& c = counters_[hist];
  c = counter_update(c, taken);
  hist = static_cast<std::uint16_t>(((hist << 1) | (taken ? 1 : 0)) &
                                    history_value_mask_);
}

void TwoLevelLocalPredictor::flush() {
  for (auto& h : histories_) h = 0;
  for (auto& c : counters_) c = 1;
}

std::string to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kStaticTaken:
      return "static-taken";
    case PredictorKind::kBimodal:
      return "bimodal";
    case PredictorKind::kGShare:
      return "gshare";
    case PredictorKind::kTwoLevelLocal:
      return "two-level-local";
  }
  return "?";
}

std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kStaticTaken:
      return std::make_unique<StaticTakenPredictor>();
    case PredictorKind::kBimodal:
      return std::make_unique<BimodalPredictor>();
    case PredictorKind::kGShare:
      return std::make_unique<GSharePredictor>();
    case PredictorKind::kTwoLevelLocal:
      return std::make_unique<TwoLevelLocalPredictor>();
  }
  throw InvalidArgument("make_predictor: unknown kind");
}

}  // namespace sce::uarch
