#include "nn/zoo.hpp"

#include <filesystem>
#include <fstream>

#include "data/synthetic.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "nn/rnn.hpp"
#include "nn/serialize.hpp"
#include "nn/shape_ops.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace sce::nn {

Sequential build_mnist_cnn() {
  Sequential model;
  model.add(std::make_unique<Conv2D>(1, 8, 5))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Conv2D>(8, 16, 5))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(256, 64))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(64, 10))
      .add(std::make_unique<Softmax>());
  return model;
}

Sequential build_cifar_cnn() {
  Sequential model;
  model.add(std::make_unique<Conv2D>(3, 12, 3))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Conv2D>(12, 24, 3))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(24 * 6 * 6, 64))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(64, 10))
      .add(std::make_unique<Softmax>());
  return model;
}

Sequential build_sequence_rnn() {
  Sequential model;
  model.add(std::make_unique<ElmanRNN>(8, 32))
      .add(std::make_unique<Dense>(32, 4))
      .add(std::make_unique<Softmax>());
  return model;
}

namespace {

TrainedModel get_or_train(const ZooConfig& config, const char* tag,
                          Sequential (*build)(),
                          data::Dataset (*make_data)(
                              const data::SyntheticConfig&)) {
  data::SyntheticConfig data_cfg;
  data_cfg.seed = config.data_seed;
  data_cfg.examples_per_class = config.train_examples_per_class +
                                config.train_examples_per_class / 2;
  data::Dataset all = make_data(data_cfg);
  util::Rng shuffle_rng(config.data_seed ^ 0x5CEDA7A5ULL);
  all.shuffle(shuffle_rng);
  auto [train_set, test_set] = all.split(2.0 / 3.0);

  TrainedModel out{build(), std::move(train_set), std::move(test_set), 0.0};

  const std::filesystem::path cache_path =
      std::filesystem::path(config.cache_dir) /
      (std::string(tag) + "_v1.scew");
  bool loaded = false;
  if (std::filesystem::exists(cache_path)) {
    try {
      load_model(out.model, cache_path.string());
      loaded = true;
      util::log_debug("zoo: loaded cached weights from ",
                      cache_path.string());
    } catch (const Error& e) {
      util::log_warn("zoo: cache at ", cache_path.string(),
                     " unusable (", e.what(), "); retraining");
    }
  }
  if (!loaded) {
    util::Rng init_rng(config.init_seed);
    out.model.initialize(init_rng);
    TrainConfig tc = config.train;
    tc.verbose = config.verbose;
    train(out.model, out.train_set, tc);
    std::error_code ec;
    std::filesystem::create_directories(config.cache_dir, ec);
    if (!ec) {
      try {
        save_model(out.model, cache_path.string());
      } catch (const Error& e) {
        util::log_warn("zoo: could not cache weights: ", e.what());
      }
    }
  }
  out.test_accuracy = evaluate_accuracy(out.model, out.test_set);
  if (config.verbose)
    util::log_info("zoo: ", tag, " test accuracy ", out.test_accuracy);
  return out;
}

}  // namespace

TrainedModel get_or_train_mnist(const ZooConfig& config) {
  return get_or_train(config, "mnist_cnn", &build_mnist_cnn,
                      &data::make_mnist_like);
}

TrainedModel get_or_train_cifar(const ZooConfig& config) {
  ZooConfig cfg = config;
  // The CIFAR-like task benefits from a slightly longer schedule.
  if (cfg.train.epochs < 4) cfg.train.epochs = 4;
  return get_or_train(cfg, "cifar_cnn", &build_cifar_cnn,
                      &data::make_cifar_like);
}

namespace {
// Adapter matching the shared get_or_train signature: the sequence
// generator has its own config type, seeded/sized from the image config.
data::Dataset make_sequence_adapter(const data::SyntheticConfig& img_cfg) {
  data::SequenceConfig seq_cfg;
  seq_cfg.seed = img_cfg.seed;
  seq_cfg.examples_per_class = img_cfg.examples_per_class;
  return data::make_sequence_like(seq_cfg);
}
}  // namespace

TrainedModel get_or_train_sequence(const ZooConfig& config) {
  ZooConfig cfg = config;
  // BPTT on short sequences benefits from a longer, gentler schedule.
  if (cfg.train.epochs < 10) cfg.train.epochs = 10;
  cfg.train.lr_decay = 0.85f;
  return get_or_train(cfg, "sequence_rnn", &build_sequence_rnn,
                      &make_sequence_adapter);
}

}  // namespace sce::nn
