// Sequential model container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/image.hpp"
#include "nn/layer.hpp"

namespace sce::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Total trainable parameters.
  std::size_t parameter_count() const;

  /// Validate layer chaining and return the output shape for `input_shape`.
  std::vector<std::size_t> output_shape(
      std::vector<std::size_t> input_shape) const;

  /// Instrumented inference; returns the final layer's output.
  Tensor forward(const Tensor& input, uarch::TraceSink& sink,
                 KernelMode mode) const;
  /// Convenience: inference without tracing.
  Tensor predict(const Tensor& input) const;
  /// Predicted class for an image (argmax of the output).
  std::size_t classify(const data::Image& image) const;

  /// Training-mode forward through every layer (caches for backward).
  Tensor train_forward(const Tensor& input);
  /// Backward from the given output gradient; `skip_last` skips that many
  /// trailing layers (used by the softmax/cross-entropy fusion).
  void backward(const Tensor& grad_output, std::size_t skip_last = 0);
  void sgd_step(float learning_rate, float momentum);

  /// He-initialize all parameterized layers.
  void initialize(util::Rng& rng);

  /// Human-readable architecture summary.
  std::string summary(const std::vector<std::size_t>& input_shape) const;

  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Convert an image to the CHW input tensor of a model.
Tensor image_to_tensor(const data::Image& image);

}  // namespace sce::nn
