// Sequential model container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/image.hpp"
#include "nn/layer.hpp"
#include "nn/plan.hpp"

namespace sce::nn {

class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.  Invalidates any cached
  /// inference plan.
  Sequential& add(std::unique_ptr<Layer> layer);

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Total trainable parameters.
  std::size_t parameter_count() const;

  /// Validate layer chaining and return the output shape for `input_shape`.
  std::vector<std::size_t> output_shape(
      std::vector<std::size_t> input_shape) const;

  /// Instrumented inference; returns the final layer's output.
  /// Allocates fresh activations per layer — the reference path planned
  /// inference is checked against.  Hot loops should use plan() instead.
  Tensor forward(const Tensor& input, uarch::TraceSink& sink,
                 KernelMode mode) const;
  /// Build a preallocated inference plan for the given input shape.
  InferencePlan plan(const std::vector<std::size_t>& input_shape) const;
  /// Convenience: inference without tracing.  Routed through a lazily
  /// built cached plan, so repeated calls do not allocate.
  Tensor predict(const Tensor& input) const;
  /// Predicted class for an image (argmax of the output).  Like predict,
  /// allocation-free in steady state.
  std::size_t classify(const data::Image& image) const;

  /// Training-mode forward through every layer (caches for backward).
  Tensor train_forward(const Tensor& input);
  /// Backward from the given output gradient; `skip_last` skips that many
  /// trailing layers (used by the softmax/cross-entropy fusion).
  void backward(const Tensor& grad_output, std::size_t skip_last = 0);
  void sgd_step(float learning_rate, float momentum);

  /// He-initialize all parameterized layers.
  void initialize(util::Rng& rng);

  /// Human-readable architecture summary.
  std::string summary(const std::vector<std::size_t>& input_shape) const;

  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

 private:
  /// Cached plan for predict()/classify(); rebuilt when the input shape
  /// changes, dropped by add().
  InferencePlan& ensure_plan(const std::vector<std::size_t>& input_shape) const;

  std::vector<std::unique_ptr<Layer>> layers_;
  mutable std::unique_ptr<InferencePlan> cached_plan_;
  mutable Tensor staged_input_;  // classify() image staging buffer
};

/// Convert an image to the CHW input tensor of a model.
Tensor image_to_tensor(const data::Image& image);

/// Allocation-free variant: writes the image into `out`, reusing its
/// storage when the shape already matches.
void image_to_tensor_into(const data::Image& image, Tensor& out);

}  // namespace sce::nn
