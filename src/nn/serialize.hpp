// Binary (de)serialization of model parameters.
//
// Format: magic "SCEW", format version, layer count, then for each layer a
// name string followed by its parameter payload.  Loading validates that
// the architecture matches layer-by-layer, so weights can only be loaded
// into a model with the identical structure they were saved from.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace sce::nn {

void save_model(const Sequential& model, std::ostream& out);
void save_model(const Sequential& model, const std::string& path);

void load_model(Sequential& model, std::istream& in);
void load_model(Sequential& model, const std::string& path);

/// The canonical serialized bytes of a model: exactly what save_model
/// writes to a stream.  This is the digest preimage — one byte sequence
/// per (architecture, weights) pair.
std::string serialized_bytes(const Sequential& model);

/// Stable content hash over the canonical serialized bytes (32 lowercase
/// hex characters).  Two models digest equal iff save_model writes the
/// same bytes for both: same layer sequence, same parameters bit-for-bit.
/// The evaluation service keys its result cache and names its checkpoint
/// files with this digest, so it must never depend on process state,
/// pointer values or build flavor — it is a pure function of the model's
/// content.
std::string model_digest(const Sequential& model);

namespace detail {
void write_floats(std::ostream& out, const std::vector<float>& values);
void read_floats(std::istream& in, std::vector<float>& values);
}  // namespace detail

}  // namespace sce::nn
