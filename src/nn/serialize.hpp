// Binary (de)serialization of model parameters.
//
// Format: magic "SCEW", format version, layer count, then for each layer a
// name string followed by its parameter payload.  Loading validates that
// the architecture matches layer-by-layer, so weights can only be loaded
// into a model with the identical structure they were saved from.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace sce::nn {

void save_model(const Sequential& model, std::ostream& out);
void save_model(const Sequential& model, const std::string& path);

void load_model(Sequential& model, std::istream& in);
void load_model(Sequential& model, const std::string& path);

namespace detail {
void write_floats(std::ostream& out, const std::vector<float>& values);
void read_floats(std::istream& in, std::vector<float>& values);
}  // namespace detail

}  // namespace sce::nn
