// Shape/normalization layers: Flatten and Softmax.
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

/// Collapses any input shape to a rank-1 tensor.  Emits no memory traffic
/// of its own (a real implementation is a view).
class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  /// A view in a real implementation; here a traceless copy.  Nothing to
  /// observe in either mode, on either path.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  /// A traceless value copy: no events in the symbolic domain either.
  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Numerically stable softmax over a rank-1 tensor.
class Softmax final : public Layer {
 public:
  std::string name() const override { return "softmax"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  /// Full softmax Jacobian backward (rarely used: the trainer fuses
  /// softmax with cross-entropy and skips this layer).
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  /// The running-max compare compiles branchless (cmov) and the
  /// exp-normalize loops do fixed work per element: constant-flow in
  /// both modes despite the value-dependent arithmetic.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// Identical code shape on the fast path.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

 private:
  Tensor cached_output_;
};

}  // namespace sce::nn
