// Layer interface: instrumented inference plus trainable backward pass.
//
// Inference (`forward_into`) is const, writes into caller-owned storage
// and reports its dynamic behaviour to a TraceSink.  Two kernel modes
// exist:
//
//  * kDataDependent — the default, modelling a normally optimized
//    implementation: ReLU short-circuits, zero activations skip their
//    multiply-accumulate work and the associated weight loads (the
//    zero-skipping optimization exploited by Hua et al., DAC'18), and
//    max-pooling takes data-dependent compare branches.  This is the code
//    whose HPC footprint leaks the input category.
//  * kConstantFlow — the countermeasure: branchless kernels that perform
//    identical memory accesses and instruction counts for every input.
//
// Training (`train_forward` / `backward` / `sgd_step`) is un-instrumented;
// the evaluator only ever observes inference.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/kernels/execution_path.hpp"
#include "nn/leakage_contract.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"
#include "uarch/trace.hpp"
#include "util/rng.hpp"

namespace sce::nn {

namespace kernels {
class SymbolicExecutor;
}

enum class KernelMode { kDataDependent, kConstantFlow };

std::string to_string(KernelMode mode);

/// Callback receiving one named inference-time buffer: its label, base
/// address and size in bytes.  Used to register a model's stable buffers
/// with a uarch::TraceBuffer so recorded traces are relocatable.
using BufferVisitor =
    std::function<void(const std::string& name, const void* base,
                       std::size_t bytes)>;

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Inference, writing into caller-owned storage.  Must not mutate the
  /// layer; `input` and `output` must be distinct objects.  `output` is
  /// reshaped as needed (allocation-free when it already has the right
  /// shape, or enough reserved capacity) and `workspace` lends whatever
  /// per-layer scratch the kernel needs, so a caller that reuses both
  /// across calls — the InferencePlan — runs the whole forward pass
  /// without touching the heap.
  ///
  /// `path` is a *request*: implementations resolve it through
  /// kernels::select_path, so an observing sink always executes the
  /// instrumented kernels regardless of what the caller asked for, and
  /// the fast kernels run only when the sink provably discards.
  virtual void forward_into(const Tensor& input, Tensor& output,
                            Workspace& workspace, uarch::TraceSink& sink,
                            KernelMode mode, ExecutionPath path) const = 0;

  /// Default-path convenience: fast when the sink discards (nothing to
  /// trace — deployed inference), instrumented when it observes.
  void forward_into(const Tensor& input, Tensor& output, Workspace& workspace,
                    uarch::TraceSink& sink, KernelMode mode) const {
    forward_into(input, output, workspace, sink, mode,
                 sink.discards() ? ExecutionPath::kFast
                                 : ExecutionPath::kInstrumented);
  }

  /// Allocating convenience wrapper around forward_into (fresh output and
  /// scratch per call — the pre-plan behaviour, kept for tests and one-off
  /// calls; hot loops should go through an InferencePlan instead).
  Tensor forward(const Tensor& input, uarch::TraceSink& sink, KernelMode mode,
                 ExecutionPath path) const;
  Tensor forward(const Tensor& input, uarch::TraceSink& sink,
                 KernelMode mode) const;
  /// Deployed-default dispatch: untraced, data-dependent kernels, fast
  /// path.  What an un-instrumented caller (training's forward pass, a
  /// one-off evaluation) gets without spelling out the policy.
  Tensor forward(const Tensor& input) const;

  /// Forward pass that caches whatever backward() needs.
  virtual Tensor train_forward(const Tensor& input) = 0;

  /// Backpropagate: consume dL/d(output), produce dL/d(input), accumulate
  /// parameter gradients.  Must be called after train_forward.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Apply accumulated gradients with SGD + momentum, then clear them.
  virtual void sgd_step(float /*learning_rate*/, float /*momentum*/) {}

  /// Output shape for a given input shape (shape inference / validation).
  virtual std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const = 0;

  /// Static leakage metadata for this layer's *instrumented* inference
  /// kernel in `mode`.  The base default is the conservative worst case
  /// (`undeclared()`), so a kernel that never states its behaviour is
  /// flagged, not trusted; every layer in this library overrides it with
  /// claims the trace oracle cross-validates (tests/analysis).
  virtual LeakageContract leakage_contract(KernelMode mode) const;

  /// Claims about the *fast* kernel in `mode`.  No trace exists on that
  /// path, so these describe the generated code (blend-based skips are
  /// branchless; a row-skip branch is still a branch) and can never be
  /// oracle-verified — the analyzer reports them as such.  The base
  /// default is `undeclared()`: a layer that adds a fast kernel without
  /// describing it is assumed worst-case.
  virtual LeakageContract fast_leakage_contract(KernelMode mode) const;

  /// Path-dispatching accessor; stamps `path` into the returned contract.
  LeakageContract leakage_contract(KernelMode mode, ExecutionPath path) const;

  /// Replay this layer's (mode, path) kernel against a symbolic executor
  /// (nn/kernels/symbolic.hpp) so the analyzer can *derive* its leakage
  /// contract from the code instead of trusting the declaration above.
  /// Every layer in this library overrides it with its kernel's symbolic
  /// model; the base default reports the layer as unmodeled, which the
  /// analyzer surfaces rather than guessing.
  virtual void symbolic_forward(kernels::SymbolicExecutor& exec,
                                const std::vector<std::size_t>& input_shape,
                                KernelMode mode, ExecutionPath path) const;

  virtual std::size_t parameter_count() const { return 0; }

  /// (De)serialize parameters; layers without parameters write nothing.
  virtual void save_parameters(std::ostream& /*out*/) const {}
  virtual void load_parameters(std::istream& /*in*/) {}

  /// Randomize parameters (He initialization); no-op for stateless layers.
  virtual void initialize(util::Rng& /*rng*/) {}

  /// Report every buffer this layer's *inference* kernels read or write
  /// (weights, biases — not training state, which forward_into never
  /// touches).  Stateless layers report nothing.  Addresses must stay
  /// stable for the visiting consumer's lifetime, which parameter
  /// tensors — sized at construction/load — satisfy.
  virtual void visit_buffers(const BufferVisitor& /*visit*/) const {}
};

namespace detail {
/// Cost constants for `retire` bookkeeping, shared by all kernels so the
/// instruction-count model is consistent.
inline constexpr std::uint64_t kMacInstructions = 2;   // mul + add
inline constexpr std::uint64_t kLoopOverhead = 1;      // index/compare
inline constexpr std::uint64_t kCompareInstructions = 1;

/// Component-wise gradient clip applied by every parameterized layer's
/// sgd_step.  Per-example SGD on cross-entropy occasionally produces large
/// gradients early in training; the clip keeps the small models in this
/// repository stable across seeds without a learning-rate search.
inline constexpr float kGradClip = 1.0f;

inline float clip_gradient(float g) {
  if (g > kGradClip) return kGradClip;
  if (g < -kGradClip) return -kGradClip;
  return g;
}
}  // namespace detail

}  // namespace sce::nn
