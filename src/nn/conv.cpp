#include "nn/conv.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "nn/kernels/conv2d.hpp"
#include "nn/kernels/symbolic.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"

namespace sce::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride,
               std::size_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      padding_(padding),
      weights_({out_channels, in_channels, kernel_size, kernel_size}),
      bias_(out_channels, 0.0f),
      grad_weights_({out_channels, in_channels, kernel_size, kernel_size}),
      grad_bias_(out_channels, 0.0f),
      momentum_weights_({out_channels, in_channels, kernel_size, kernel_size}),
      momentum_bias_(out_channels, 0.0f) {
  if (in_channels == 0 || out_channels == 0 || kernel_size == 0)
    throw InvalidArgument("Conv2D: dimensions must be positive");
  if (stride == 0) throw InvalidArgument("Conv2D: stride must be positive");
  if (padding >= kernel_size)
    throw InvalidArgument("Conv2D: padding must be below the kernel size");
}

float Conv2D::weight_at(std::size_t oc, std::size_t ic, std::size_t ky,
                        std::size_t kx) const {
  return weights_
      .data()[((oc * in_channels_ + ic) * kernel_ + ky) * kernel_ + kx];
}

std::vector<std::size_t> Conv2D::output_shape(
    const std::vector<std::size_t>& in) const {
  if (in.size() != 3)
    throw InvalidArgument("Conv2D: expected CHW input, got rank " +
                          std::to_string(in.size()));
  if (in[0] != in_channels_)
    throw InvalidArgument("Conv2D: input has " + std::to_string(in[0]) +
                          " channels, layer expects " +
                          std::to_string(in_channels_));
  if (in[1] + 2 * padding_ < kernel_ || in[2] + 2 * padding_ < kernel_)
    throw InvalidArgument("Conv2D: input smaller than kernel");
  return {out_channels_,
          (in[1] + 2 * padding_ - kernel_) / stride_ + 1,
          (in[2] + 2 * padding_ - kernel_) / stride_ + 1};
}

std::size_t Conv2D::parameter_count() const {
  return weights_.numel() + bias_.size();
}

void Conv2D::initialize(util::Rng& rng) {
  // He initialization: weights ~ N(0, 2 / fan_in).
  const double fan_in =
      static_cast<double>(in_channels_ * kernel_ * kernel_);
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < weights_.numel(); ++i)
    weights_[i] = static_cast<float>(rng.normal(0.0, stddev));
  for (auto& b : bias_) b = 0.0f;
  momentum_weights_.fill(0.0f);
  for (auto& m : momentum_bias_) m = 0.0f;
}

std::string to_string(ConvAlgorithm algorithm) {
  switch (algorithm) {
    case ConvAlgorithm::kDirect:
      return "direct";
    case ConvAlgorithm::kIm2col:
      return "im2col";
  }
  return "?";
}

void Conv2D::forward_into(const Tensor& input, Tensor& output,
                          Workspace& workspace, uarch::TraceSink& sink,
                          KernelMode mode, ExecutionPath path) const {
  // Validate and size the output without allocating on the hot path: the
  // cheap scalar checks pass when the caller (an InferencePlan) already
  // shaped everything, and the allocating output_shape() call only runs
  // to produce its precise error message on the cold path.
  if (input.rank() != 3 || input.dim(0) != in_channels_ ||
      input.dim(1) + 2 * padding_ < kernel_ ||
      input.dim(2) + 2 * padding_ < kernel_)
    (void)output_shape(input.shape());  // throws with the full diagnosis
  const std::size_t out_h =
      (input.dim(1) + 2 * padding_ - kernel_) / stride_ + 1;
  const std::size_t out_w =
      (input.dim(2) + 2 * padding_ - kernel_) / stride_ + 1;
  if (output.rank() != 3 || output.dim(0) != out_channels_ ||
      output.dim(1) != out_h || output.dim(2) != out_w)
    output.resize({out_channels_, out_h, out_w});

  kernels::Conv2DShape shape;
  shape.in = input.data();
  shape.weights = weights_.data();
  shape.bias = bias_.data();
  shape.out = output.data();
  shape.in_channels = in_channels_;
  shape.out_channels = out_channels_;
  shape.kernel = kernel_;
  shape.stride = stride_;
  shape.padding = padding_;
  shape.in_h = input.dim(1);
  shape.in_w = input.dim(2);
  shape.out_h = out_h;
  shape.out_w = out_w;

  if (kernels::select_path(sink, path) == ExecutionPath::kFast) {
    kernels::conv2d_fast(shape, workspace, algorithm_, mode);
    return;
  }
  switch (algorithm_) {
    case ConvAlgorithm::kDirect:
      if (sink.discards())
        kernels::conv2d_direct_scalar(shape, mode);
      else
        kernels::conv2d_direct_instrumented(shape, sink, mode);
      return;
    case ConvAlgorithm::kIm2col:
      if (sink.discards())
        kernels::conv2d_im2col_scalar(shape, workspace, mode);
      else
        kernels::conv2d_im2col_instrumented(shape, workspace, sink, mode);
      return;
  }
  throw InvalidArgument("Conv2D: unknown algorithm");
}

void Conv2D::visit_buffers(const BufferVisitor& visit) const {
  visit("weights", weights_.data(), weights_.numel() * sizeof(float));
  visit("bias", bias_.data(), bias_.size() * sizeof(float));
}

LeakageContract Conv2D::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  if (mode == KernelMode::kDataDependent) {
    c.branch_outcomes_vary = true;
    c.address_stream_varies = true;
    c.instruction_count_varies = true;
  }
  return c;
}

LeakageContract Conv2D::fast_leakage_contract(KernelMode /*mode*/) const {
  // The tiled GEMM runs the same loop trip counts and touches the same
  // buffers for every input; the data-dependent zero skip is a branchless
  // lane blend, so even that mode leaks nothing through control flow.
  return LeakageContract{};
}

void Conv2D::symbolic_forward(kernels::SymbolicExecutor& exec,
                              const std::vector<std::size_t>& input_shape,
                              KernelMode mode, ExecutionPath path) const {
  const std::vector<std::size_t> out = output_shape(input_shape);
  kernels::Conv2DGeom g;
  g.in_channels = in_channels_;
  g.out_channels = out_channels_;
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  g.in_h = input_shape[1];
  g.in_w = input_shape[2];
  g.out_h = out[1];
  g.out_w = out[2];
  kernels::conv2d_symbolic(g, algorithm_, exec, mode, path);
}

Tensor Conv2D::train_forward(const Tensor& input) {
  cached_input_ = input;
  uarch::NullSink sink;
  return forward(input, sink, KernelMode::kConstantFlow);
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0)
    throw InvalidArgument("Conv2D::backward before train_forward");
  const auto out_shape = output_shape(cached_input_.shape());
  if (grad_output.shape() != out_shape)
    throw InvalidArgument("Conv2D::backward: gradient shape mismatch");

  const std::size_t in_h = cached_input_.dim(1);
  const std::size_t in_w = cached_input_.dim(2);
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];

  Tensor grad_input(cached_input_.shape());
  const float* in_data = cached_input_.data();
  const float* go_data = grad_output.data();
  float* gi_data = grad_input.data();
  float* gw_data = grad_weights_.data();

  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const float go = go_data[(oc * out_h + oy) * out_w + ox];
        if (go == 0.0f) continue;
        grad_bias_[oc] += go;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(padding_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) continue;
            const std::size_t in_row =
                (ic * in_h + static_cast<std::size_t>(iy)) * in_w;
            const std::size_t w_row =
                ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_;
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w))
                continue;
              const std::size_t in_idx =
                  in_row + static_cast<std::size_t>(ix);
              gw_data[w_row + kx] += go * in_data[in_idx];
              gi_data[in_idx] += go * weight_at(oc, ic, ky, kx);
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2D::sgd_step(float learning_rate, float momentum) {
  float* w = weights_.data();
  float* gw = grad_weights_.data();
  float* mw = momentum_weights_.data();
  for (std::size_t i = 0; i < weights_.numel(); ++i) {
    mw[i] = momentum * mw[i] - learning_rate * detail::clip_gradient(gw[i]);
    w[i] += mw[i];
    gw[i] = 0.0f;
  }
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    momentum_bias_[i] = momentum * momentum_bias_[i] -
                        learning_rate * detail::clip_gradient(grad_bias_[i]);
    bias_[i] += momentum_bias_[i];
    grad_bias_[i] = 0.0f;
  }
}

void Conv2D::save_parameters(std::ostream& out) const {
  detail::write_floats(out, weights_.values());
  detail::write_floats(out, bias_);
}

void Conv2D::load_parameters(std::istream& in) {
  detail::read_floats(in, weights_.values());
  detail::read_floats(in, bias_);
}

}  // namespace sce::nn
