// Planned inference: shape inference runs once, activations ping-pong
// through two preallocated buffers, and every layer owns a dedicated
// Workspace for its scratch.  After construction the steady-state forward
// pass performs zero heap allocations, so instrumented campaigns measure
// the kernels — not the allocator.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"

namespace sce::uarch {
class TraceBuffer;
}

namespace sce::nn {

class Sequential;

class InferencePlan {
 public:
  /// Runs shape inference over `model` for `input_shape`, sizes the
  /// ping-pong buffers and per-layer scratch, and performs one warmup
  /// pass so that no later run() allocates.
  InferencePlan(const Sequential& model,
                const std::vector<std::size_t>& input_shape);

  std::size_t layer_count() const { return layers_.size(); }
  const std::vector<std::size_t>& input_shape() const { return shapes_.front(); }
  const std::vector<std::size_t>& output_shape() const { return shapes_.back(); }
  /// Inferred output shape of layer `i` (as computed at plan time).
  const std::vector<std::size_t>& layer_output_shape(std::size_t i) const;

  /// Planned forward pass with an explicit execution-path request.  The
  /// request is resolved per layer through kernels::select_path, so an
  /// observing sink always runs instrumented kernels no matter what was
  /// asked for.  The returned reference points at an internal buffer and
  /// is valid until the next run() or move.
  const Tensor& run(const Tensor& input, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path);
  /// Default-path run: instrumented when the sink observes, fast when it
  /// discards.  (Pass ExecutionPath::kInstrumented explicitly to time the
  /// scalar kernels without a trace — the fast paths' baseline.)
  const Tensor& run(const Tensor& input, uarch::TraceSink& sink,
                    KernelMode mode);
  /// Untraced forward pass (predict semantics: deployed data-dependent
  /// kernels on the fast path, trace events discarded).
  const Tensor& run(const Tensor& input);

  /// Registers every buffer a traced run() touches with `trace` so its
  /// recorded addresses become relocatable: the ping-pong activation
  /// buffers (full reserved capacity), each layer's parameter buffers
  /// (via Layer::visit_buffers, named "L<i>/<buffer>"), and each layer's
  /// workspace scratch slots.  Must be called before recording starts;
  /// the registration sequence is deterministic, so two plans built from
  /// the same model register identical region sequences regardless of
  /// heap layout.
  void register_regions(uarch::TraceBuffer& trace) const;

 private:
  std::vector<const Layer*> layers_;
  // shapes_[0] is the input shape; shapes_[i + 1] is layer i's output.
  std::vector<std::vector<std::size_t>> shapes_;
  Tensor ping_;
  Tensor pong_;
  std::size_t buffer_capacity_ = 0;    // reserved elements in ping_/pong_
  std::vector<Workspace> workspaces_;  // one per layer, sized once
};

}  // namespace sce::nn
