// Fully connected layer with input-stationary weight layout.
//
// Weights are stored as {in, out} so that each *input* activation owns a
// contiguous row of weights.  In data-dependent mode a zero activation
// skips its entire row — the classic sparse-GEMM optimization — which
// elides both the row's weight loads (cache footprint depends on the
// input) and the row's inner-loop branches (branch count depends on the
// input).  This layer is therefore the strongest single leak source in
// the model, matching the paper's observation that cache-misses carry the
// most category information.
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  std::string name() const override { return "dense"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void sgd_step(float learning_rate, float momentum) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::size_t parameter_count() const override;
  void save_parameters(std::ostream& out) const override;
  void load_parameters(std::istream& in) override;
  void initialize(util::Rng& rng) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  /// Data-dependent: the sparse-GEMM row skip elides a whole weight row
  /// — its loads, its inner-loop back-edges and its MACs — so every
  /// trace aspect varies with the input's zero pattern.  The strongest
  /// single leak source in the model.  Constant-flow: dense GEMM.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// The fast GEMV keeps the per-input row-skip *branch* in
  /// data-dependent mode (it elides whole weight rows, like the scalar
  /// kernel), so that mode stays leaky on the fast path too.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

  void visit_buffers(const BufferVisitor& visit) const override;

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weights_;           // {in, out}
  std::vector<float> bias_;  // {out}

  Tensor cached_input_;
  Tensor grad_weights_;
  std::vector<float> grad_bias_;
  Tensor momentum_weights_;
  std::vector<float> momentum_bias_;
};

}  // namespace sce::nn
