// ReLU activation: the source of the activation sparsity that the
// data-dependent kernels downstream exploit (and leak through).
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

class ReLU final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }
  /// Data-dependent: the sign test is a real branch whose outcome tracks
  /// each activation, but load/store/retire counts are fixed — the leak
  /// is purely branch-outcome shaped.  Constant-flow: branchless maxss.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// The fast kernel is a vector blend in both modes: branch-free.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

 private:
  Tensor cached_input_;
};

}  // namespace sce::nn
