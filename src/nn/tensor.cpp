#include "nn/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace sce::nn {

namespace {
std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (std::size_t d : shape) {
    if (d == 0) throw InvalidArgument("Tensor: zero-sized dimension");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (shape_numel(shape_) != data_.size())
    throw InvalidArgument("Tensor: shape does not match value count");
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size())
    throw InvalidArgument("Tensor::dim: axis out of range");
  return shape_[axis];
}

float& Tensor::operator[](std::size_t flat_index) {
  if (flat_index >= data_.size())
    throw InvalidArgument("Tensor: flat index out of range");
  return data_[flat_index];
}

float Tensor::operator[](std::size_t flat_index) const {
  if (flat_index >= data_.size())
    throw InvalidArgument("Tensor: flat index out of range");
  return data_[flat_index];
}

float& Tensor::at(std::size_t c, std::size_t y, std::size_t x) {
  if (rank() != 3) throw InvalidArgument("Tensor::at: tensor is not 3-D");
  if (c >= shape_[0] || y >= shape_[1] || x >= shape_[2])
    throw InvalidArgument("Tensor::at: index out of range");
  return data_[(c * shape_[1] + y) * shape_[2] + x];
}

float Tensor::at(std::size_t c, std::size_t y, std::size_t x) const {
  return const_cast<Tensor*>(this)->at(c, y, x);
}

void Tensor::resize(const std::vector<std::size_t>& shape) {
  const std::size_t n = shape_numel(shape);
  shape_.assign(shape.begin(), shape.end());
  data_.resize(n);
}

void Tensor::reserve(std::size_t max_numel, std::size_t max_rank) {
  data_.reserve(max_numel);
  shape_.reserve(max_rank);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_numel(new_shape) != data_.size())
    throw InvalidArgument("Tensor::reshaped: element count mismatch");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) throw InvalidArgument("Tensor::argmax: empty tensor");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Tensor::sparsity() const {
  if (data_.empty()) return 0.0;
  const auto zeros = std::count(data_.begin(), data_.end(), 0.0f);
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace sce::nn
