#include "nn/shape_ops.hpp"

#include <algorithm>
#include <cmath>

#include "nn/kernels/softmax.hpp"
#include "nn/kernels/symbolic.hpp"
#include "util/error.hpp"

namespace sce::nn {

std::vector<std::size_t> Flatten::output_shape(
    const std::vector<std::size_t>& in) const {
  if (in.empty()) throw InvalidArgument("Flatten: empty shape");
  std::size_t numel = 1;
  for (std::size_t d : in) numel *= d;
  return {numel};
}

void Flatten::forward_into(const Tensor& input, Tensor& output,
                           Workspace& /*workspace*/,
                           uarch::TraceSink& /*sink*/, KernelMode /*mode*/,
                           ExecutionPath /*path*/) const {
  // A real implementation is a view; here it is a traceless copy — the
  // same on every path.
  if (input.rank() == 0) (void)output_shape(input.shape());  // throws
  if (output.rank() != 1 || output.dim(0) != input.numel())
    output.resize({input.numel()});
  std::copy(input.data(), input.data() + input.numel(), output.data());
}

LeakageContract Flatten::leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

LeakageContract Flatten::fast_leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

void Flatten::symbolic_forward(kernels::SymbolicExecutor& exec,
                               const std::vector<std::size_t>& input_shape,
                               KernelMode /*mode*/,
                               ExecutionPath /*path*/) const {
  std::size_t n = 1;
  for (std::size_t d : input_shape) n *= d;
  const kernels::SymBuffer in = exec.input_buffer();
  const kernels::SymBuffer out = exec.output_buffer(n);
  for (std::size_t i = 0; i < n; ++i) exec.assign(out, i, exec.value(in, i));
}

Tensor Flatten::train_forward(const Tensor& input) {
  cached_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_shape_.empty())
    throw InvalidArgument("Flatten::backward before train_forward");
  return grad_output.reshaped(cached_shape_);
}

std::vector<std::size_t> Softmax::output_shape(
    const std::vector<std::size_t>& in) const {
  if (in.size() != 1)
    throw InvalidArgument("Softmax: expected rank-1 input");
  return in;
}

void Softmax::forward_into(const Tensor& input, Tensor& output,
                           Workspace& /*workspace*/, uarch::TraceSink& sink,
                           KernelMode /*mode*/, ExecutionPath path) const {
  // Softmax has no useful data-dependent shortcuts; both kernel modes use
  // the same stable exp-normalize code.
  if (input.numel() == 0) throw InvalidArgument("Softmax: empty input");
  if (!output.same_shape(input)) output.resize(input.shape());
  const std::size_t n = input.numel();
  if (kernels::select_path(sink, path) == ExecutionPath::kFast)
    kernels::softmax_fast(input.data(), output.data(), n);
  else if (sink.discards())
    kernels::softmax_scalar(input.data(), output.data(), n);
  else
    kernels::softmax_instrumented(input.data(), output.data(), n, sink);
}

LeakageContract Softmax::leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

LeakageContract Softmax::fast_leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

void Softmax::symbolic_forward(kernels::SymbolicExecutor& exec,
                               const std::vector<std::size_t>& input_shape,
                               KernelMode /*mode*/, ExecutionPath path) const {
  std::size_t n = 1;
  for (std::size_t d : input_shape) n *= d;
  kernels::softmax_symbolic(n, exec, path);
}

Tensor Softmax::train_forward(const Tensor& input) {
  cached_output_ = forward(input);
  return cached_output_;
}

Tensor Softmax::backward(const Tensor& grad_output) {
  if (cached_output_.numel() == 0)
    throw InvalidArgument("Softmax::backward before train_forward");
  if (!grad_output.same_shape(cached_output_))
    throw InvalidArgument("Softmax::backward: gradient shape mismatch");
  const std::size_t n = cached_output_.numel();
  Tensor grad_input(cached_output_.shape());
  double dot = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    dot += static_cast<double>(grad_output[i]) * cached_output_[i];
  for (std::size_t i = 0; i < n; ++i)
    grad_input[i] = cached_output_[i] *
                    (grad_output[i] - static_cast<float>(dot));
  return grad_input;
}

}  // namespace sce::nn
