// 2-D convolution layer (valid padding, unit stride).
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

/// Execution strategy of the convolution kernel.
///  * kDirect — the textbook 7-deep loop nest; weights streamed per
///    output pixel.
///  * kIm2col — materialize the patch matrix, then GEMM (the strategy of
///    BLAS-backed frameworks, and the one GEMM-shape side-channel attacks
///    such as Cache Telepathy target): more memory traffic, different
///    reuse pattern, same arithmetic.
enum class ConvAlgorithm { kDirect, kIm2col };

std::string to_string(ConvAlgorithm algorithm);

class Conv2D final : public Layer {
 public:
  /// Square kernels: weight shape {out_channels, in_channels, k, k}.
  /// `stride` >= 1; `padding` adds implicit zero borders (zero padding
  /// contributes nothing and costs nothing — no loads are emitted for
  /// padded positions, in either kernel mode).
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t stride = 1,
         std::size_t padding = 0);

  std::string name() const override { return "conv2d"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void sgd_step(float learning_rate, float momentum) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::size_t parameter_count() const override;
  void save_parameters(std::ostream& out) const override;
  void load_parameters(std::istream& in) override;
  void initialize(util::Rng& rng) override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel_size() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return padding_; }

  ConvAlgorithm algorithm() const { return algorithm_; }
  void set_algorithm(ConvAlgorithm algorithm) { algorithm_ = algorithm; }

  /// Data-dependent: zero-skipping elides the weight load and MAC behind
  /// a per-element branch — the address stream and instruction count
  /// track the input's sparsity pattern, though the branch *count* is
  /// fixed (the skip test itself always executes).  Holds for both the
  /// direct loop nest and the im2col GEMM (the im2col gather itself is a
  /// fixed pattern; only the GEMM inner loop skips).  Constant-flow:
  /// every element does full work.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// The fast GEMM has no data-dependent branches in either mode (the
  /// zero skip is a lane blend), but in data-dependent mode its *results*
  /// are still pinned to the skipping semantics — the claims below
  /// describe the generated code, and are never oracle-verified.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  /// Replays the (mode, path, algorithm) conv kernel's loop nest over
  /// the symbolic domain (kernels::conv2d_symbolic).
  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

  void visit_buffers(const BufferVisitor& visit) const override;

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

 private:
  float weight_at(std::size_t oc, std::size_t ic, std::size_t ky,
                  std::size_t kx) const;

  ConvAlgorithm algorithm_ = ConvAlgorithm::kDirect;
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;
  Tensor weights_;           // {out, in, k, k}
  std::vector<float> bias_;  // {out}

  // Training state.
  Tensor cached_input_;
  Tensor grad_weights_;
  std::vector<float> grad_bias_;
  Tensor momentum_weights_;
  std::vector<float> momentum_bias_;
};

}  // namespace sce::nn
