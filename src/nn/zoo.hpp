// Reference model builders and a small train-once cache.
//
// The architectures mirror the scale of the paper's TensorFlow models:
// a LeNet-style CNN for the MNIST-like data and a slightly deeper CNN for
// the CIFAR-like data.  `get_or_train_*` trains on first use and caches
// the weights on disk so that the benches for different figures/tables
// share one trained model.
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace sce::nn {

/// conv5x5x8 - relu - pool2 - conv5x5x16 - relu - pool2 -
/// dense(256->64) - relu - dense(64->10) - softmax, for 1x28x28 inputs.
Sequential build_mnist_cnn();

/// conv3x3x12 - relu - pool2 - conv3x3x24 - relu - pool2 - dense(864->64)
/// - relu - dense(64->10) - softmax, for 3x32x32 inputs.
Sequential build_cifar_cnn();

/// elman-rnn(8->32) - dense(32->4) - softmax, for {1, T, 8} sequences
/// (the future-work recurrent classifier).
Sequential build_sequence_rnn();

struct ZooConfig {
  /// Directory for cached weights; created on demand.
  std::string cache_dir = ".sce_model_cache";
  std::uint64_t data_seed = 1;
  std::uint64_t init_seed = 2;
  std::size_t train_examples_per_class = 80;
  TrainConfig train{};
  bool verbose = false;
};

/// Build + train (or load from cache) the MNIST-like classifier along with
/// the dataset it was trained on.
struct TrainedModel {
  Sequential model;
  data::Dataset train_set;
  data::Dataset test_set;
  double test_accuracy = 0.0;
};

TrainedModel get_or_train_mnist(const ZooConfig& config = {});
TrainedModel get_or_train_cifar(const ZooConfig& config = {});
TrainedModel get_or_train_sequence(const ZooConfig& config = {});

}  // namespace sce::nn
