#include "nn/trainer.hpp"

#include <cmath>
#include <numeric>

#include "nn/loss.hpp"
#include "nn/shape_ops.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace sce::nn {

std::vector<EpochStats> train(Sequential& model, const data::Dataset& dataset,
                              const TrainConfig& config) {
  if (dataset.empty()) throw InvalidArgument("train: empty dataset");
  if (model.layer_count() == 0) throw InvalidArgument("train: empty model");
  if (model.layer(model.layer_count() - 1).name() != "softmax")
    throw InvalidArgument(
        "train: last layer must be softmax (fused cross-entropy)");

  util::Rng rng(config.shuffle_seed);
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::vector<EpochStats> history;
  float lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t idx : order) {
      const data::Example& example = dataset[idx];
      const Tensor input = image_to_tensor(example.image);
      const Tensor probs = model.train_forward(input);
      const auto label = static_cast<std::size_t>(example.label);
      const double loss = cross_entropy(probs, label);
      if (std::isnan(loss) || std::isinf(loss))
        throw Error("train: loss diverged (NaN/inf) — lower the learning "
                    "rate or check the data normalization");
      loss_sum += loss;
      if (probs.argmax() == label) ++correct;
      // Softmax + cross-entropy fuse to (p - onehot) at the softmax input,
      // so backward skips the trailing softmax layer.
      const Tensor grad = softmax_cross_entropy_gradient(probs, label);
      model.backward(grad, /*skip_last=*/1);
      model.sgd_step(lr, config.momentum);
    }
    EpochStats stats;
    stats.mean_loss = loss_sum / static_cast<double>(dataset.size());
    stats.accuracy =
        static_cast<double>(correct) / static_cast<double>(dataset.size());
    history.push_back(stats);
    if (config.verbose)
      util::log_info("epoch ", epoch + 1, "/", config.epochs,
                     "  loss=", stats.mean_loss, "  acc=", stats.accuracy);
    lr *= config.lr_decay;
  }
  return history;
}

double evaluate_accuracy(const Sequential& model,
                         const data::Dataset& dataset) {
  if (dataset.empty()) throw InvalidArgument("evaluate_accuracy: empty");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (model.classify(dataset[i].image) ==
        static_cast<std::size_t>(dataset[i].label))
      ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace sce::nn
