#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/digest.hpp"
#include "util/error.hpp"

namespace sce::nn {

namespace {
constexpr char kMagic[4] = {'S', 'C', 'E', 'W'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("model load: truncated stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  if (n > 4096) throw IoError("model load: implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw IoError("model load: truncated stream");
  return s;
}
}  // namespace

namespace detail {

void write_floats(std::ostream& out, const std::vector<float>& values) {
  write_u32(out, static_cast<std::uint32_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
}

void read_floats(std::istream& in, std::vector<float>& values) {
  const std::uint32_t n = read_u32(in);
  if (n != values.size())
    throw IoError("model load: parameter count mismatch (expected " +
                  std::to_string(values.size()) + ", found " +
                  std::to_string(n) + ")");
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw IoError("model load: truncated parameter payload");
}

}  // namespace detail

void save_model(const Sequential& model, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(model.layer_count()));
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    write_string(out, model.layer(i).name());
    model.layer(i).save_parameters(out);
  }
  if (!out) throw IoError("model save: write failure");
}

void save_model(const Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("model save: cannot create " + path);
  save_model(model, out);
}

void load_model(Sequential& model, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw IoError("model load: bad magic");
  const std::uint32_t version = read_u32(in);
  if (version != kVersion)
    throw IoError("model load: unsupported version " +
                  std::to_string(version));
  const std::uint32_t count = read_u32(in);
  if (count != model.layer_count())
    throw IoError("model load: layer count mismatch");
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    const std::string name = read_string(in);
    if (name != model.layer(i).name())
      throw IoError("model load: layer " + std::to_string(i) + " is '" +
                    model.layer(i).name() + "' but file has '" + name + "'");
    model.layer(i).load_parameters(in);
  }
}

void load_model(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("model load: cannot open " + path);
  load_model(model, in);
}

std::string serialized_bytes(const Sequential& model) {
  std::ostringstream out(std::ios::binary);
  save_model(model, out);
  return std::move(out).str();
}

std::string model_digest(const Sequential& model) {
  return util::content_digest_hex(serialized_bytes(model));
}

}  // namespace sce::nn
