// Average pooling: non-overlapping windows, data-INdependent by nature.
//
// Unlike max pooling there is no data-dependent control flow here in
// either kernel mode — the layer is a constant-footprint reduction, which
// makes it interesting for the countermeasure discussion: architectures
// built from avg-pool + constant-flow arithmetic are side-channel-silent
// by construction.
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

class AvgPool2D final : public Layer {
 public:
  explicit AvgPool2D(std::size_t window = 2);

  std::string name() const override { return "avgpool2d"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  std::size_t window() const { return window_; }

  /// Constant-footprint reduction in both modes: fixed loads, fixed
  /// arithmetic, no data-dependent branches anywhere.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// Same constant-footprint reduction on the fast path.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

 private:
  std::size_t window_;
  std::vector<std::size_t> cached_input_shape_;
};

}  // namespace sce::nn
