// 2x2-style max pooling with data-dependent compare branches.
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

class MaxPool2D final : public Layer {
 public:
  /// Non-overlapping square pooling windows (stride == window).
  /// Trailing rows/columns that do not fill a window are dropped.
  explicit MaxPool2D(std::size_t window = 2);

  std::string name() const override { return "maxpool2d"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  std::size_t window() const { return window_; }

  /// Data-dependent: one max-update branch per non-first window element,
  /// outcome decided by where the max sits; memory traffic and counts
  /// are fixed.  Constant-flow: branchless max.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// The fast kernel's max is a cmov in both modes: branch-free.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

 private:
  std::size_t window_;
  Tensor cached_input_;
  std::vector<std::size_t> cached_argmax_;  // flat input index per output
};

}  // namespace sce::nn
