#include "nn/workspace.hpp"

#include "util/error.hpp"

namespace sce::nn {

const Tensor& Workspace::slot(std::size_t i) const {
  if (i >= slots_.size())
    throw InvalidArgument("Workspace::slot: index out of range");
  return slots_[i];
}

Tensor& Workspace::slot_ref(std::size_t slot) {
  while (slots_.size() <= slot) slots_.emplace_back();
  return slots_[slot];
}

Tensor& Workspace::scratch(std::size_t slot, std::size_t d0) {
  Tensor& t = slot_ref(slot);
  if (t.rank() != 1 || t.dim(0) != d0) t.resize({d0});
  return t;
}

Tensor& Workspace::scratch(std::size_t slot, std::size_t d0, std::size_t d1) {
  Tensor& t = slot_ref(slot);
  if (t.rank() != 2 || t.dim(0) != d0 || t.dim(1) != d1) t.resize({d0, d1});
  return t;
}

}  // namespace sce::nn
