#include "nn/plan.hpp"

#include <algorithm>
#include <string>

#include "nn/model.hpp"
#include "uarch/trace_buffer.hpp"
#include "util/error.hpp"

namespace sce::nn {

InferencePlan::InferencePlan(const Sequential& model,
                             const std::vector<std::size_t>& input_shape) {
  if (model.layer_count() == 0)
    throw InvalidArgument("InferencePlan: model has no layers");

  layers_.reserve(model.layer_count());
  shapes_.reserve(model.layer_count() + 1);
  shapes_.push_back(input_shape);
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    const Layer& l = model.layer(i);
    layers_.push_back(&l);
    shapes_.push_back(l.output_shape(shapes_.back()));
  }

  // Both ping-pong buffers must be able to hold any intermediate
  // activation (a buffer is reused every other layer).
  std::size_t max_numel = 1;
  std::size_t max_rank = 1;
  for (std::size_t i = 1; i < shapes_.size(); ++i) {
    std::size_t numel = 1;
    for (std::size_t d : shapes_[i]) numel *= d;
    max_numel = std::max(max_numel, numel);
    max_rank = std::max(max_rank, shapes_[i].size());
  }
  ping_.reserve(max_numel, max_rank);
  pong_.reserve(max_numel, max_rank);
  buffer_capacity_ = max_numel;
  workspaces_.resize(layers_.size());

  // Warmup passes: first-touch sizing of every buffer and scratch slot so
  // steady-state runs are allocation-free.  All three kernel variants are
  // exercised because their scratch layouts differ — the fast conv GEMM
  // stores its patch matrix transposed (same slot, same element count)
  // and only allocates its validity-mask slot in constant-flow mode,
  // while the instrumented im2col path uses the row-major layout.
  const Tensor warm(input_shape);
  (void)run(warm);  // fast, data-dependent (the deployed default)
  uarch::NullSink sink;
  (void)run(warm, sink, KernelMode::kConstantFlow, ExecutionPath::kFast);
  (void)run(warm, sink, KernelMode::kDataDependent,
            ExecutionPath::kInstrumented);
}

const std::vector<std::size_t>& InferencePlan::layer_output_shape(
    std::size_t i) const {
  if (i >= layers_.size())
    throw InvalidArgument("InferencePlan: layer index out of range");
  return shapes_[i + 1];
}

const Tensor& InferencePlan::run(const Tensor& input, uarch::TraceSink& sink,
                                 KernelMode mode, ExecutionPath path) {
  if (input.shape() != shapes_.front())
    throw InvalidArgument("InferencePlan::run: input shape mismatch");
  Tensor* const bufs[2] = {&ping_, &pong_};
  const Tensor* in = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor* out = bufs[i & 1];  // in != out by construction
    // Restore the planned shape before the layer runs: a buffer cycles
    // through several activation shapes per pass, and presetting it here
    // (from the stored shape vector, no temporaries) keeps the layers'
    // own resize-on-mismatch paths cold — and the run allocation-free.
    out->resize(shapes_[i + 1]);
    layers_[i]->forward_into(*in, *out, workspaces_[i], sink, mode, path);
    in = out;
  }
  return *in;
}

const Tensor& InferencePlan::run(const Tensor& input, uarch::TraceSink& sink,
                                 KernelMode mode) {
  return run(input, sink, mode,
             sink.discards() ? ExecutionPath::kFast
                             : ExecutionPath::kInstrumented);
}

const Tensor& InferencePlan::run(const Tensor& input) {
  uarch::NullSink sink;
  return run(input, sink, KernelMode::kDataDependent, ExecutionPath::kFast);
}

void InferencePlan::register_regions(uarch::TraceBuffer& trace) const {
  // The ping-pong buffers are registered at their full reserved capacity:
  // run() resizes them within that capacity, so the data pointers are
  // stable and every activation access lands inside these two regions.
  trace.register_region("act/ping", ping_.data(),
                        buffer_capacity_ * sizeof(float));
  trace.register_region("act/pong", pong_.data(),
                        buffer_capacity_ * sizeof(float));
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::string prefix = "L" + std::to_string(i) + "/";
    layers_[i]->visit_buffers(
        [&](const std::string& name, const void* base, std::size_t bytes) {
          trace.register_region(prefix + name, base, bytes);
        });
    const Workspace& ws = workspaces_[i];
    for (std::size_t s = 0; s < ws.slot_count(); ++s) {
      const Tensor& t = ws.slot(s);
      trace.register_region(prefix + "scratch" + std::to_string(s), t.data(),
                            t.numel() * sizeof(float));
    }
  }
}

}  // namespace sce::nn
