#include "nn/pool.hpp"

#include "nn/kernels/pooling.hpp"
#include "nn/kernels/symbolic.hpp"
#include "util/error.hpp"

namespace sce::nn {

MaxPool2D::MaxPool2D(std::size_t window) : window_(window) {
  if (window == 0) throw InvalidArgument("MaxPool2D: window must be positive");
}

std::vector<std::size_t> MaxPool2D::output_shape(
    const std::vector<std::size_t>& in) const {
  if (in.size() != 3)
    throw InvalidArgument("MaxPool2D: expected CHW input");
  if (in[1] < window_ || in[2] < window_)
    throw InvalidArgument("MaxPool2D: input smaller than window");
  return {in[0], in[1] / window_, in[2] / window_};
}

void MaxPool2D::forward_into(const Tensor& input, Tensor& output,
                             Workspace& /*workspace*/, uarch::TraceSink& sink,
                             KernelMode mode, ExecutionPath path) const {
  if (input.rank() != 3 || input.dim(1) < window_ || input.dim(2) < window_)
    (void)output_shape(input.shape());  // throws with the full diagnosis
  const std::size_t out_h = input.dim(1) / window_;
  const std::size_t out_w = input.dim(2) / window_;
  if (output.rank() != 3 || output.dim(0) != input.dim(0) ||
      output.dim(1) != out_h || output.dim(2) != out_w)
    output.resize({input.dim(0), out_h, out_w});

  kernels::Pool2DShape shape;
  shape.in = input.data();
  shape.out = output.data();
  shape.channels = input.dim(0);
  shape.in_h = input.dim(1);
  shape.in_w = input.dim(2);
  shape.out_h = out_h;
  shape.out_w = out_w;
  shape.window = window_;

  if (kernels::select_path(sink, path) == ExecutionPath::kFast)
    kernels::maxpool2d_fast(shape);
  else if (sink.discards())
    kernels::maxpool2d_scalar(shape, mode);
  else
    kernels::maxpool2d_instrumented(shape, sink, mode);
}

LeakageContract MaxPool2D::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  if (mode == KernelMode::kDataDependent) c.branch_outcomes_vary = true;
  return c;
}

LeakageContract MaxPool2D::fast_leakage_contract(KernelMode /*mode*/) const {
  // The windowed max compiles to cmov/maxss on the fast path.
  return LeakageContract{};
}

void MaxPool2D::symbolic_forward(kernels::SymbolicExecutor& exec,
                                 const std::vector<std::size_t>& input_shape,
                                 KernelMode mode, ExecutionPath path) const {
  const std::vector<std::size_t> out = output_shape(input_shape);
  kernels::Pool2DGeom g;
  g.channels = input_shape[0];
  g.in_h = input_shape[1];
  g.in_w = input_shape[2];
  g.out_h = out[1];
  g.out_w = out[2];
  g.window = window_;
  kernels::maxpool2d_symbolic(g, exec, mode, path);
}

Tensor MaxPool2D::train_forward(const Tensor& input) {
  cached_input_ = input;
  const auto out_shape = output_shape(input.shape());
  Tensor output(out_shape);
  cached_argmax_.assign(output.numel(), 0);
  const std::size_t channels = out_shape[0];
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_h = input.dim(1);
  const std::size_t in_w = input.dim(2);
  const float* in_data = input.data();

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        std::size_t best_idx =
            (c * in_h + oy * window_) * in_w + ox * window_;
        float best = in_data[best_idx];
        for (std::size_t wy = 0; wy < window_; ++wy) {
          for (std::size_t wx = 0; wx < window_; ++wx) {
            const std::size_t idx =
                (c * in_h + (oy * window_ + wy)) * in_w + (ox * window_ + wx);
            if (in_data[idx] > best) {
              best = in_data[idx];
              best_idx = idx;
            }
          }
        }
        const std::size_t out_idx = (c * out_h + oy) * out_w + ox;
        output[out_idx] = best;
        cached_argmax_[out_idx] = best_idx;
      }
    }
  }
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0)
    throw InvalidArgument("MaxPool2D::backward before train_forward");
  if (grad_output.numel() != cached_argmax_.size())
    throw InvalidArgument("MaxPool2D::backward: gradient shape mismatch");
  Tensor grad_input(cached_input_.shape());
  for (std::size_t i = 0; i < cached_argmax_.size(); ++i)
    grad_input[cached_argmax_[i]] += grad_output[i];
  return grad_input;
}

}  // namespace sce::nn
