// Per-kernel leakage contracts: static metadata describing how a layer's
// instrumented inference kernel behaves as a function of its input, per
// KernelMode — the vocabulary the static analyzer (src/analysis) composes
// into whole-model verdicts without executing anything.
//
// Each flag makes a falsifiable claim about the kernel's dynamic trace
// (the TraceSink event stream) and is cross-validated against the uarch
// trace oracle in tests/analysis: a declared-varying aspect must actually
// vary across probe inputs, and a declared-invariant aspect must be
// bit-identical for every input of the same shape.
#pragma once

#include <string>

#include "nn/kernels/execution_path.hpp"

namespace sce::nn {

enum class KernelMode;

/// How a layer transforms the secret-taint of its activations.
///  * kPropagate — output values depend on input values (every real layer
///    here); taint flows through.
///  * kSanitize — output is independent of the input values (constant
///    output, or re-randomized); taint is cleared downstream.
enum class TaintTransfer { kPropagate, kSanitize };

std::string to_string(TaintTransfer transfer);

/// Static claims about one kernel's trace, for one KernelMode.  Every
/// claim is phrased as "varies with the input *values* at fixed input
/// shape" — shape-dependent cost (e.g. an RNN's timestep count) is
/// tracked separately because a fixed-shape InferencePlan pins it.
struct LeakageContract {
  /// Outcomes of emitted conditional branches vary with the input
  /// (ReLU's sign branch, MaxPool's max-update branch).
  bool branch_outcomes_vary = false;
  /// The *number* of branches (conditional + structural back-edges)
  /// varies with the input (Dense's row-skip elides whole inner loops).
  bool branch_count_varies = false;
  /// The sequence of accessed addresses varies with the input (skipped
  /// weight rows never touch their cache lines).
  bool address_stream_varies = false;
  /// The total dynamic instruction count varies with the input.
  bool instruction_count_varies = false;
  /// The kernel draws randomness during inference (a masking
  /// countermeasure would; Dropout does *not* — it is identity at
  /// inference time).
  bool consumes_rng = false;
  /// Trace length scales with the input *shape* (RNN timesteps): benign
  /// under a fixed-shape plan, but variable-length deployments broadcast
  /// their length.  Informational; the fixed-shape oracle cannot check it.
  bool shape_scales_trace = false;
  /// How secret taint flows through this layer.
  TaintTransfer taint = TaintTransfer::kPropagate;
  /// False for the conservative Layer-base default: the layer never
  /// declared a contract, so the analyzer must assume the worst.
  bool declared = true;
  /// Which execution path these claims describe.  Only the instrumented
  /// path emits trace events, so only its contracts can be (and are)
  /// cross-validated by the uarch trace oracle; fast-path contracts are
  /// honest static descriptions of the generated code that the analyzer
  /// must report as unverified rather than silently trusting.
  ExecutionPath path = ExecutionPath::kInstrumented;
  /// Verification metadata, stamped by the analyzer (never declared by a
  /// layer): the symbolic verifier derived this contract from the kernel
  /// code, matched it against the declaration, and — on the fast path —
  /// anchored it to the oracle-validated instrumented contract via
  /// refinement.  Excluded from operator== (it describes our confidence
  /// in the claims, not the claims themselves).
  bool symbolically_verified = false;

  /// True if any per-input trace aspect varies (RNG aside).
  bool input_dependent() const {
    return branch_outcomes_vary || branch_count_varies ||
           address_stream_varies || instruction_count_varies;
  }

  /// A kernel with no input dependence, no RNG draw and declared
  /// metadata is constant-flow: its trace is a pure function of shape.
  bool constant_flow() const { return !input_dependent() && !consumes_rng; }

  /// True when the trace oracle can falsify these claims: it replays the
  /// kernel through a RecordingSink, which exists only on the
  /// instrumented path.
  bool oracle_verifiable() const {
    return path == ExecutionPath::kInstrumented;
  }

  /// True when some authority backs these claims: the dynamic trace
  /// oracle (instrumented path) or the symbolic verifier's refinement
  /// chain (fast path).
  bool verified() const { return oracle_verifiable() || symbolically_verified; }

  /// Fully invariant kernel (the countermeasure claim).
  static LeakageContract constant();
  /// Worst-case contract used when a layer declares nothing.
  static LeakageContract undeclared();
};

bool operator==(const LeakageContract& a, const LeakageContract& b);
bool operator!=(const LeakageContract& a, const LeakageContract& b);

/// Compact one-line rendering, e.g. "branches(outcomes,count) addresses".
std::string to_string(const LeakageContract& contract);

}  // namespace sce::nn
