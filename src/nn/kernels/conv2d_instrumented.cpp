// Instrumented Conv2D kernels — the leakage ground truth.
//
// These loop bodies moved verbatim from nn/conv.cpp: every sink event
// (loads, the zero-skip branch, retire bookkeeping, structural
// back-edges) and the loop order are pinned by trace tests and the
// oracle cross-check.  Each kernel is a template over the sink type; the
// TraceSink instantiation serves observing sinks, the DiscardSink
// instantiation compiles the trace calls away and is the scalar path the
// fast kernels are measured against.
#include "nn/kernels/conv2d.hpp"

#include "nn/kernels/registry.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
// The instrumented loop bodies below were moved verbatim from the layer
// translation units, where unqualified `detail::` named sce::nn::detail.
// Re-export the cost-model constants here so the moved text still
// compiles unchanged inside kernels::detail's enclosing scope.
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

template <typename Sink>
void forward_direct(const Conv2DShape& s, Sink& sink, KernelMode mode) {
  const std::size_t in_h = s.in_h;
  const std::size_t in_w = s.in_w;
  const std::size_t out_h = s.out_h;
  const std::size_t out_w = s.out_w;
  const float* in_data = s.in;
  const float* w_data = s.weights;
  float* out_data = s.out;

  const std::uintptr_t zero_skip_site = SCE_BRANCH_SITE();

  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = s.bias[oc];
        sink.load(&s.bias[oc], sizeof(float));
        for (std::size_t ic = 0; ic < s.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < s.kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
                static_cast<std::ptrdiff_t>(s.padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) continue;
            const std::size_t in_row_base =
                (ic * in_h + static_cast<std::size_t>(iy)) * in_w;
            const std::size_t w_row_base =
                ((oc * s.in_channels + ic) * s.kernel + ky) * s.kernel;
            for (std::size_t kx = 0; kx < s.kernel; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                  static_cast<std::ptrdiff_t>(s.padding);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w))
                continue;  // implicit zero padding: nothing loaded
              const std::size_t in_idx =
                  in_row_base + static_cast<std::size_t>(ix);
              const float v = in_data[in_idx];
              sink.load(&in_data[in_idx], sizeof(float));
              if (mode == KernelMode::kDataDependent) {
                // Zero-skipping: a zero activation contributes nothing, so
                // the weight load and MAC are elided behind a branch.
                const bool skip = (v == 0.0f);
                sink.branch(zero_skip_site, skip);
                if (skip) {
                  sink.retire(detail::kLoopOverhead);
                  continue;
                }
              }
              const float w = w_data[w_row_base + kx];
              sink.load(&w_data[w_row_base + kx], sizeof(float));
              acc += v * w;
              sink.retire(detail::kMacInstructions + detail::kLoopOverhead);
            }
          }
        }
        out_data[(oc * out_h + oy) * out_w + ox] = acc;
        sink.store(&out_data[(oc * out_h + oy) * out_w + ox], sizeof(float));
        sink.retire(detail::kLoopOverhead);
        // Loop back-edges for the kx/ky/ic loops of this output pixel.
        sink.structural_branches(s.in_channels * s.kernel * s.kernel +
                                 s.in_channels * s.kernel + s.in_channels +
                                 1);
      }
    }
  }
}

template <typename Sink>
void forward_im2col(const Conv2DShape& s, Workspace& workspace, Sink& sink,
                    KernelMode mode) {
  const std::size_t in_h = s.in_h;
  const std::size_t in_w = s.in_w;
  const std::size_t out_h = s.out_h;
  const std::size_t out_w = s.out_w;
  const std::size_t pixels = out_h * out_w;
  const std::size_t patch_len = s.in_channels * s.kernel * s.kernel;
  const float* in_data = s.in;
  const float* w_data = s.weights;

  // Phase 1: materialize the patch matrix (the "im2col" buffer).  Every
  // input element inside a window is loaded and stored once per window it
  // appears in — the extra memory traffic that distinguishes this
  // strategy from the direct loop nest.  The buffer is workspace scratch:
  // after the sizing pass it is reused allocation-free, and every element
  // is written in this phase before phase 2 reads it.
  Tensor& patches = workspace.scratch(0, pixels, patch_len);
  float* patch_data = patches.data();
  for (std::size_t oy = 0; oy < out_h; ++oy) {
    for (std::size_t ox = 0; ox < out_w; ++ox) {
      const std::size_t row = oy * out_w + ox;
      std::size_t column = 0;
      for (std::size_t ic = 0; ic < s.in_channels; ++ic) {
        for (std::size_t ky = 0; ky < s.kernel; ++ky) {
          for (std::size_t kx = 0; kx < s.kernel; ++kx, ++column) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
                static_cast<std::ptrdiff_t>(s.padding);
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                static_cast<std::ptrdiff_t>(s.padding);
            float v = 0.0f;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(in_h) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_w)) {
              const std::size_t in_idx =
                  (ic * in_h + static_cast<std::size_t>(iy)) * in_w +
                  static_cast<std::size_t>(ix);
              v = in_data[in_idx];
              sink.load(&in_data[in_idx], sizeof(float));
            }
            patch_data[row * patch_len + column] = v;
            sink.store(&patch_data[row * patch_len + column], sizeof(float));
            sink.retire(detail::kLoopOverhead);
          }
        }
      }
      sink.structural_branches(patch_len + s.kernel + s.in_channels + 1);
    }
  }

  // Phase 2: GEMM — output[oc][pixel] = bias[oc] + W[oc][:] . P[pixel][:].
  // Weight rows are exactly the {out, in, k, k} layout flattened.
  const std::uintptr_t gemm_skip_site = SCE_BRANCH_SITE();
  float* out_data = s.out;
  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
      float acc = s.bias[oc];
      sink.load(&s.bias[oc], sizeof(float));
      const float* patch_row = &patch_data[pixel * patch_len];
      const float* weight_row = &w_data[oc * patch_len];
      for (std::size_t j = 0; j < patch_len; ++j) {
        const float v = patch_row[j];
        sink.load(&patch_row[j], sizeof(float));
        if (mode == KernelMode::kDataDependent) {
          const bool skip = (v == 0.0f);
          sink.branch(gemm_skip_site, skip);
          if (skip) {
            sink.retire(detail::kLoopOverhead);
            continue;
          }
        }
        acc += v * weight_row[j];
        sink.load(&weight_row[j], sizeof(float));
        sink.retire(detail::kMacInstructions + detail::kLoopOverhead);
      }
      out_data[oc * pixels + pixel] = acc;
      sink.store(&out_data[oc * pixels + pixel], sizeof(float));
      sink.structural_branches(patch_len + 1);
    }
  }
}

}  // namespace

void conv2d_direct_instrumented(const Conv2DShape& s, uarch::TraceSink& sink,
                                KernelMode mode) {
  forward_direct(s, sink, mode);
}

void conv2d_direct_scalar(const Conv2DShape& s, KernelMode mode) {
  uarch::DiscardSink sink;
  forward_direct(s, sink, mode);
}

void conv2d_im2col_instrumented(const Conv2DShape& s, Workspace& workspace,
                                uarch::TraceSink& sink, KernelMode mode) {
  forward_im2col(s, workspace, sink, mode);
}

void conv2d_im2col_scalar(const Conv2DShape& s, Workspace& workspace,
                          KernelMode mode) {
  uarch::DiscardSink sink;
  forward_im2col(s, workspace, sink, mode);
}

namespace {
const detail::KernelRegistration registration{
    {"conv2d.direct", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "scalar loop nest, zero-skip branch per element, full trace"},
    {"conv2d.direct", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "scalar loop nest, every in-bounds element does full work"},
    {"conv2d.im2col", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "patch-matrix gather + scalar GEMM with zero-skip branch"},
    {"conv2d.im2col", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "patch-matrix gather + dense scalar GEMM"},
};
}  // namespace

}  // namespace sce::nn::kernels
