// Symbolic models for every registered kernel, instrumented and fast.
//
// Each model replays its kernel's loop nest over the abstract domain.
// The instrumented models mirror the sink-event streams of
// *_instrumented.cpp line for line: same event order, same guarded
// regions, same retire amounts.  (One subtlety worth naming: softmax's
// running-max compare emits no branch event in the real kernel, so it is
// — correctly — absent here too.)  The fast models mirror the source
// structure of *_fast.cpp: lane blends are branchless, the scalar
// row-skip branches of dense/rnn survive, and the loops inside a skipped
// row count as structural branches (the conservative source-level view;
// an unrolling compiler can only remove branches, and the elided loads
// alone already carry the leak).
//
// Trip counts are concrete; only the data is symbolic.  A model run is a
// few hundred thousand cheap virtual calls for the largest zoo layer —
// milliseconds, paid only inside the analyzer.
#include "nn/kernels/symbolic.hpp"

#include <algorithm>
#include <cstring>

#include "nn/conv.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

// ---------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------

void dense_instrumented_model(const DenseGeom& g, SymbolicExecutor& exec,
                              KernelMode mode) {
  const std::size_t in = g.in_features;
  const std::size_t out = g.out_features;
  const SymBuffer x = exec.input_buffer();
  const SymBuffer w = exec.param_buffer("weights", in * out);
  const SymBuffer b = exec.param_buffer("bias", out);
  const SymBuffer y = exec.output_buffer(out);

  for (std::size_t o = 0; o < out; ++o) {
    exec.store(y, o, exec.load(b, o));
  }
  exec.structural_branches(out);

  for (std::size_t i = 0; i < in; ++i) {
    const SymValue v = exec.load(x, i);
    if (mode == KernelMode::kDataDependent) {
      exec.if_else(
          SCE_SYM_SITE("dense row-skip (x[i]==0 elides the weight row)"), v,
          [&] { exec.retire(detail::kLoopOverhead); },
          [&] {
            for (std::size_t o = 0; o < out; ++o) {
              const SymValue wv = exec.load(w, i * out + o);
              exec.store(y, o, join(exec.value(y, o), v, wv));
              exec.retire(detail::kMacInstructions + detail::kLoopOverhead);
            }
            exec.structural_branches(out + 1);
          });
    } else {
      for (std::size_t o = 0; o < out; ++o) {
        const SymValue wv = exec.load(w, i * out + o);
        exec.store(y, o, join(exec.value(y, o), v, wv));
        exec.retire(detail::kMacInstructions + detail::kLoopOverhead);
      }
      exec.structural_branches(out + 1);
    }
  }
  exec.structural_branches(in);
}

void dense_fast_model(const DenseGeom& g, SymbolicExecutor& exec,
                      KernelMode mode) {
  const std::size_t in = g.in_features;
  const std::size_t out = g.out_features;
  const SymBuffer x = exec.input_buffer();
  const SymBuffer w = exec.param_buffer("weights", in * out);
  const SymBuffer b = exec.param_buffer("bias", out);
  const SymBuffer y = exec.output_buffer(out);
  const bool skip_zero = mode == KernelMode::kDataDependent;

  // Register-blocked GEMV: accumulator tiles initialized from the bias,
  // per-input broadcast, per-input scalar row-skip branch guarding the
  // row's vector loads and FMAs (dense_fast.cpp gemv_tile).  Tile widths
  // do not matter for derivation; one pass over the outputs per input
  // captures the access structure.
  for (std::size_t o = 0; o < out; ++o) exec.assign(y, o, exec.load(b, o));
  for (std::size_t i = 0; i < in; ++i) {
    const SymValue v = exec.load(x, i);
    if (skip_zero) {
      exec.if_else(
          SCE_SYM_SITE("dense fast row-skip (scalar branch, gemv_tile)"), v,
          [&] {},
          [&] {
            for (std::size_t o = 0; o < out; ++o) {
              const SymValue wv = exec.load(w, i * out + o);
              exec.assign(y, o, join(exec.value(y, o), v, wv));
              exec.retire(detail::kMacInstructions);
            }
            // The row's vector-lane loop back-edges (source level).
            exec.structural_branches(out + 1);
          });
    } else {
      for (std::size_t o = 0; o < out; ++o) {
        const SymValue wv = exec.load(w, i * out + o);
        exec.assign(y, o, join(exec.value(y, o), v, wv));
        exec.retire(detail::kMacInstructions);
      }
      exec.structural_branches(out + 1);
    }
  }
  for (std::size_t o = 0; o < out; ++o) exec.store(y, o, exec.value(y, o));
}

// ---------------------------------------------------------------------
// Conv2D (direct and im2col share the instrumented zero-skip structure)
// ---------------------------------------------------------------------

bool in_bounds(std::size_t o, std::size_t stride, std::size_t k,
               std::size_t padding, std::size_t limit) {
  const std::ptrdiff_t i = static_cast<std::ptrdiff_t>(o * stride + k) -
                           static_cast<std::ptrdiff_t>(padding);
  return i >= 0 && i < static_cast<std::ptrdiff_t>(limit);
}

std::size_t in_index(std::size_t o, std::size_t stride, std::size_t k,
                     std::size_t padding) {
  return o * stride + k - padding;
}

void conv2d_direct_instrumented_model(const Conv2DGeom& g,
                                      SymbolicExecutor& exec,
                                      KernelMode mode) {
  const SymBuffer in = exec.input_buffer();
  const SymBuffer w = exec.param_buffer(
      "weights", g.out_channels * g.in_channels * g.kernel * g.kernel);
  const SymBuffer b = exec.param_buffer("bias", g.out_channels);
  const SymBuffer out =
      exec.output_buffer(g.out_channels * g.out_h * g.out_w);

  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        SymValue acc = exec.load(b, oc);
        for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < g.kernel; ++ky) {
            // Padding bounds are public (index arithmetic): plain C++
            // control flow, exactly like the kernel's untraced `continue`.
            if (!in_bounds(oy, g.stride, ky, g.padding, g.in_h)) continue;
            const std::size_t iy = in_index(oy, g.stride, ky, g.padding);
            const std::size_t w_row_base =
                ((oc * g.in_channels + ic) * g.kernel + ky) * g.kernel;
            for (std::size_t kx = 0; kx < g.kernel; ++kx) {
              if (!in_bounds(ox, g.stride, kx, g.padding, g.in_w)) continue;
              const std::size_t ix = in_index(ox, g.stride, kx, g.padding);
              const std::size_t in_idx = (ic * g.in_h + iy) * g.in_w + ix;
              const SymValue v = exec.load(in, in_idx);
              auto mac = [&, kx] {
                const SymValue wv = exec.load(w, w_row_base + kx);
                acc = join(acc, v, wv);
                exec.retire(detail::kMacInstructions +
                            detail::kLoopOverhead);
              };
              if (mode == KernelMode::kDataDependent) {
                exec.if_else(
                    SCE_SYM_SITE(
                        "conv2d zero-skip (elides weight load + MAC)"),
                    v, [&] { exec.retire(detail::kLoopOverhead); }, mac);
              } else {
                mac();
              }
            }
          }
        }
        exec.store(out, (oc * g.out_h + oy) * g.out_w + ox, acc);
        exec.retire(detail::kLoopOverhead);
        exec.structural_branches(g.in_channels * g.kernel * g.kernel +
                                 g.in_channels * g.kernel + g.in_channels +
                                 1);
      }
    }
  }
}

void conv2d_im2col_instrumented_model(const Conv2DGeom& g,
                                      SymbolicExecutor& exec,
                                      KernelMode mode) {
  const std::size_t pixels = g.out_h * g.out_w;
  const std::size_t patch_len = g.in_channels * g.kernel * g.kernel;
  const SymBuffer in = exec.input_buffer();
  const SymBuffer w = exec.param_buffer("weights", g.out_channels * patch_len);
  const SymBuffer b = exec.param_buffer("bias", g.out_channels);
  const SymBuffer patches =
      exec.scratch_buffer("patches", pixels * patch_len);
  const SymBuffer out = exec.output_buffer(g.out_channels * pixels);

  // Phase 1: patch gather — loads gated only by public padding bounds,
  // stores and retire unconditional: a fixed access pattern.
  for (std::size_t oy = 0; oy < g.out_h; ++oy) {
    for (std::size_t ox = 0; ox < g.out_w; ++ox) {
      const std::size_t row = oy * g.out_w + ox;
      std::size_t column = 0;
      for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++column) {
            SymValue v;  // implicit zero padding: public
            if (in_bounds(oy, g.stride, ky, g.padding, g.in_h) &&
                in_bounds(ox, g.stride, kx, g.padding, g.in_w)) {
              const std::size_t iy = in_index(oy, g.stride, ky, g.padding);
              const std::size_t ix = in_index(ox, g.stride, kx, g.padding);
              v = exec.load(in, (ic * g.in_h + iy) * g.in_w + ix);
            }
            exec.store(patches, row * patch_len + column, v);
            exec.retire(detail::kLoopOverhead);
          }
        }
      }
      exec.structural_branches(patch_len + g.kernel + g.in_channels + 1);
    }
  }

  // Phase 2: GEMM with the zero-skip branch on the (secret) patch value.
  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
      SymValue acc = exec.load(b, oc);
      for (std::size_t j = 0; j < patch_len; ++j) {
        const SymValue v = exec.load(patches, pixel * patch_len + j);
        auto mac = [&, j] {
          acc = join(acc, v, exec.load(w, oc * patch_len + j));
          exec.retire(detail::kMacInstructions + detail::kLoopOverhead);
        };
        if (mode == KernelMode::kDataDependent) {
          exec.if_else(
              SCE_SYM_SITE("conv2d im2col GEMM zero-skip"), v,
              [&] { exec.retire(detail::kLoopOverhead); }, mac);
        } else {
          mac();
        }
      }
      exec.store(out, oc * pixels + pixel, acc);
      exec.structural_branches(patch_len + 1);
    }
  }
}

void conv2d_fast_model(const Conv2DGeom& g, SymbolicExecutor& exec) {
  // Transposed im2col + register-tiled GEMM (conv2d_fast.cpp): the patch
  // gather touches every in-bounds element behind public bounds tests,
  // and the GEMM's zero skip is a lane blend — branchless, full loads.
  // The structure is identical in both modes and for both algorithms, so
  // one model serves all four cells.
  const std::size_t pixels = g.out_h * g.out_w;
  const std::size_t patch_len = g.in_channels * g.kernel * g.kernel;
  const SymBuffer in = exec.input_buffer();
  const SymBuffer w = exec.param_buffer("weights", g.out_channels * patch_len);
  const SymBuffer b = exec.param_buffer("bias", g.out_channels);
  const SymBuffer patches =
      exec.scratch_buffer("patches_t", pixels * patch_len);
  const SymBuffer out = exec.output_buffer(g.out_channels * pixels);

  for (std::size_t oy = 0; oy < g.out_h; ++oy) {
    for (std::size_t ox = 0; ox < g.out_w; ++ox) {
      const std::size_t pixel = oy * g.out_w + ox;
      std::size_t column = 0;
      for (std::size_t ic = 0; ic < g.in_channels; ++ic) {
        for (std::size_t ky = 0; ky < g.kernel; ++ky) {
          for (std::size_t kx = 0; kx < g.kernel; ++kx, ++column) {
            SymValue v;
            if (in_bounds(oy, g.stride, ky, g.padding, g.in_h) &&
                in_bounds(ox, g.stride, kx, g.padding, g.in_w)) {
              const std::size_t iy = in_index(oy, g.stride, ky, g.padding);
              const std::size_t ix = in_index(ox, g.stride, kx, g.padding);
              v = exec.load(in, (ic * g.in_h + iy) * g.in_w + ix);
            }
            exec.store(patches, column * pixels + pixel, v);
          }
        }
      }
    }
  }
  for (std::size_t oc = 0; oc < g.out_channels; ++oc) {
    for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
      SymValue acc = exec.load(b, oc);
      for (std::size_t j = 0; j < patch_len; ++j) {
        // Lane blend: load, multiply, mask — no branch, every element.
        acc = join(acc, exec.load(patches, j * pixels + pixel),
                   exec.load(w, oc * patch_len + j));
        exec.retire(detail::kMacInstructions);
      }
      exec.store(out, oc * pixels + pixel, acc);
      exec.structural_branches(patch_len + 1);
    }
  }
}

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

void relu_instrumented_model(std::size_t n, SymbolicExecutor& exec,
                             KernelMode mode) {
  const SymBuffer in = exec.input_buffer();
  const SymBuffer out = exec.output_buffer(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SymValue v = exec.load(in, i);
    if (mode == KernelMode::kDataDependent) {
      // The sign branch guards no events — both continuations store and
      // retire identically — so only its *outcome* can vary.
      exec.branch(SCE_SYM_SITE("relu sign branch (v < 0)"), v);
      exec.retire(detail::kLoopOverhead);
    } else {
      exec.retire(detail::kLoopOverhead + 1);
    }
    exec.store(out, i, v);
  }
  exec.structural_branches(n);
}

void relu_fast_model(std::size_t n, SymbolicExecutor& exec) {
  // Vector max against zero: branchless in both modes.
  const SymBuffer in = exec.input_buffer();
  const SymBuffer out = exec.output_buffer(n);
  for (std::size_t i = 0; i < n; ++i) {
    exec.store(out, i, exec.load(in, i));
    exec.retire(1);
  }
}

// ---------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------

void maxpool_instrumented_model(const Pool2DGeom& g, SymbolicExecutor& exec,
                                KernelMode mode) {
  const SymBuffer in = exec.input_buffer();
  const SymBuffer out = exec.output_buffer(g.channels * g.out_h * g.out_w);
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        SymValue best;
        bool first = true;  // public: a loop-position flag
        for (std::size_t wy = 0; wy < g.window; ++wy) {
          for (std::size_t wx = 0; wx < g.window; ++wx) {
            const std::size_t idx =
                (c * g.in_h + (oy * g.window + wy)) * g.in_w +
                (ox * g.window + wx);
            const SymValue v = exec.load(in, idx);
            if (first) {
              best = v;
              first = false;
              exec.retire(detail::kLoopOverhead);
              continue;
            }
            if (mode == KernelMode::kDataDependent) {
              // Update branch guards only the register move: memory and
              // counts stay fixed, the outcome tracks the argmax.
              exec.branch(SCE_SYM_SITE("maxpool max-update branch"), v);
              best = join(best, v);
              exec.retire(detail::kCompareInstructions);
            } else {
              best = join(best, v);
              exec.retire(detail::kCompareInstructions + 1);
            }
          }
        }
        exec.store(out, (c * g.out_h + oy) * g.out_w + ox, best);
        exec.structural_branches(g.window * g.window + g.window + 1);
      }
    }
  }
}

void maxpool_fast_model(const Pool2DGeom& g, SymbolicExecutor& exec) {
  const SymBuffer in = exec.input_buffer();
  const SymBuffer out = exec.output_buffer(g.channels * g.out_h * g.out_w);
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        SymValue best;
        for (std::size_t wy = 0; wy < g.window; ++wy)
          for (std::size_t wx = 0; wx < g.window; ++wx)
            best = join(best,
                        exec.load(in, (c * g.in_h + (oy * g.window + wy)) *
                                              g.in_w +
                                          (ox * g.window + wx)));
        exec.store(out, (c * g.out_h + oy) * g.out_w + ox, best);
        exec.retire(g.window * g.window);
      }
    }
  }
}

void avgpool_model(const Pool2DGeom& g, SymbolicExecutor& exec,
                   bool instrumented) {
  const SymBuffer in = exec.input_buffer();
  const SymBuffer out = exec.output_buffer(g.channels * g.out_h * g.out_w);
  for (std::size_t c = 0; c < g.channels; ++c) {
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        SymValue sum;
        for (std::size_t wy = 0; wy < g.window; ++wy) {
          for (std::size_t wx = 0; wx < g.window; ++wx) {
            sum = join(sum,
                       exec.load(in, (c * g.in_h + (oy * g.window + wy)) *
                                             g.in_w +
                                         (ox * g.window + wx)));
            exec.retire(detail::kLoopOverhead + 1);
          }
        }
        exec.store(out, (c * g.out_h + oy) * g.out_w + ox, sum);
        exec.retire(1);
        if (instrumented)
          exec.structural_branches(g.window * g.window + g.window + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------

void softmax_model(std::size_t n, SymbolicExecutor& exec,
                   bool instrumented) {
  const SymBuffer in = exec.input_buffer();
  const SymBuffer out = exec.output_buffer(n);
  SymValue max_v = exec.value(in, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // The running-max compare compiles to a cmov and the kernel emits no
    // branch event for it: value flow only.
    max_v = join(max_v, exec.load(in, i));
    exec.retire(detail::kCompareInstructions + 1);
  }
  SymValue sum;
  for (std::size_t i = 0; i < n; ++i) {
    const SymValue e = join(exec.value(in, i), max_v);
    exec.store(out, i, e);
    sum = join(sum, e);
    exec.retire(20);
  }
  for (std::size_t i = 0; i < n; ++i) {
    exec.store(out, i, join(exec.value(out, i), sum));
    exec.retire(detail::kLoopOverhead + 1);
  }
  if (instrumented) exec.structural_branches(3 * n);
}

// ---------------------------------------------------------------------
// Elman RNN
// ---------------------------------------------------------------------

void rnn_instrumented_model(const RnnGeom& g, SymbolicExecutor& exec,
                            KernelMode mode) {
  const std::size_t hidden = g.hidden_dim;
  const SymBuffer x = exec.input_buffer();
  const SymBuffer wx = exec.param_buffer("wx", g.input_dim * hidden);
  const SymBuffer wh = exec.param_buffer("wh", hidden * hidden);
  const SymBuffer b = exec.param_buffer("bias", hidden);
  const SymBuffer h = exec.output_buffer(hidden);  // pre-zeroed h_0
  const SymBuffer acc = exec.scratch_buffer("acc", hidden);

  // One AXPY sweep with the row-skip structure shared by both phases.
  auto axpy_sweep = [&](const SymSite& site, auto read_v, std::size_t dim,
                        SymBuffer weights) {
    for (std::size_t i = 0; i < dim; ++i) {
      const SymValue v = read_v(i);
      auto row = [&, i] {
        for (std::size_t j = 0; j < hidden; ++j) {
          const SymValue wv = exec.load(weights, i * hidden + j);
          exec.store(acc, j, join(exec.value(acc, j), v, wv));
          exec.retire(detail::kMacInstructions + detail::kLoopOverhead);
        }
        exec.structural_branches(hidden + 1);
      };
      if (mode == KernelMode::kDataDependent) {
        exec.if_else(site, v,
                     [&] { exec.retire(detail::kLoopOverhead); }, row);
      } else {
        row();
      }
    }
    exec.structural_branches(dim);
  };

  for (std::size_t t = 0; t < g.t_steps; ++t) {
    for (std::size_t j = 0; j < hidden; ++j)
      exec.store(acc, j, exec.load(b, j));
    exec.structural_branches(hidden);
    axpy_sweep(
        SCE_SYM_SITE("rnn input row-skip (x_t[i]==0)"),
        [&](std::size_t i) { return exec.load(x, t * g.input_dim + i); },
        g.input_dim, wx);
    axpy_sweep(
        SCE_SYM_SITE("rnn hidden row-skip (h[i]==0, ReLU-sparse)"),
        [&](std::size_t i) { return exec.load(h, i); }, hidden, wh);
    for (std::size_t j = 0; j < hidden; ++j) {
      const SymValue v = exec.load(acc, j);
      if (mode == KernelMode::kDataDependent) {
        exec.branch(SCE_SYM_SITE("rnn recurrent ReLU sign branch"), v);
        exec.retire(detail::kLoopOverhead);
      } else {
        exec.retire(detail::kLoopOverhead + 1);
      }
      exec.store(h, j, v);
    }
    exec.structural_branches(hidden + 1);
  }
}

void rnn_fast_model(const RnnGeom& g, SymbolicExecutor& exec,
                    KernelMode mode) {
  const std::size_t hidden = g.hidden_dim;
  const SymBuffer x = exec.input_buffer();
  const SymBuffer wx = exec.param_buffer("wx", g.input_dim * hidden);
  const SymBuffer wh = exec.param_buffer("wh", hidden * hidden);
  const SymBuffer b = exec.param_buffer("bias", hidden);
  const SymBuffer h = exec.output_buffer(hidden);
  const SymBuffer acc = exec.scratch_buffer("acc", hidden);
  const bool skip_zero = mode == KernelMode::kDataDependent;

  auto axpy_sweep = [&](const SymSite& site, auto read_v, std::size_t dim,
                        SymBuffer weights) {
    for (std::size_t i = 0; i < dim; ++i) {
      const SymValue v = read_v(i);
      auto row = [&, i] {
        for (std::size_t j = 0; j < hidden; ++j) {
          exec.store(acc, j, join(exec.value(acc, j), v,
                                  exec.load(weights, i * hidden + j)));
          exec.retire(detail::kMacInstructions);
        }
        // The vectorized AXPY's source loop back-edges.
        exec.structural_branches(hidden + 1);
      };
      if (skip_zero) {
        exec.if_else(site, v, [&] {}, row);
      } else {
        row();
      }
    }
  };

  for (std::size_t t = 0; t < g.t_steps; ++t) {
    for (std::size_t j = 0; j < hidden; ++j)
      exec.store(acc, j, exec.load(b, j));
    axpy_sweep(
        SCE_SYM_SITE("rnn fast input row-skip (scalar branch)"),
        [&](std::size_t i) { return exec.load(x, t * g.input_dim + i); },
        g.input_dim, wx);
    axpy_sweep(
        SCE_SYM_SITE("rnn fast hidden row-skip (scalar branch)"),
        [&](std::size_t i) { return exec.load(h, i); }, hidden, wh);
    for (std::size_t j = 0; j < hidden; ++j) {
      // Blend-based ReLU: branchless in both modes.
      exec.store(h, j, exec.load(acc, j));
      exec.retire(1);
    }
  }
}

}  // namespace

// -- public model entry points ----------------------------------------

void conv2d_symbolic(const Conv2DGeom& g, ConvAlgorithm algorithm,
                     SymbolicExecutor& exec, KernelMode mode,
                     ExecutionPath path) {
  if (path == ExecutionPath::kFast) {
    conv2d_fast_model(g, exec);
  } else if (algorithm == ConvAlgorithm::kIm2col) {
    conv2d_im2col_instrumented_model(g, exec, mode);
  } else {
    conv2d_direct_instrumented_model(g, exec, mode);
  }
}

void dense_symbolic(const DenseGeom& g, SymbolicExecutor& exec,
                    KernelMode mode, ExecutionPath path) {
  if (path == ExecutionPath::kFast)
    dense_fast_model(g, exec, mode);
  else
    dense_instrumented_model(g, exec, mode);
}

void relu_symbolic(std::size_t n, SymbolicExecutor& exec, KernelMode mode,
                   ExecutionPath path) {
  if (path == ExecutionPath::kFast)
    relu_fast_model(n, exec);
  else
    relu_instrumented_model(n, exec, mode);
}

void maxpool2d_symbolic(const Pool2DGeom& g, SymbolicExecutor& exec,
                        KernelMode mode, ExecutionPath path) {
  if (path == ExecutionPath::kFast)
    maxpool_fast_model(g, exec);
  else
    maxpool_instrumented_model(g, exec, mode);
}

void avgpool2d_symbolic(const Pool2DGeom& g, SymbolicExecutor& exec,
                        ExecutionPath path) {
  avgpool_model(g, exec, path == ExecutionPath::kInstrumented);
}

void softmax_symbolic(std::size_t n, SymbolicExecutor& exec,
                      ExecutionPath path) {
  softmax_model(n, exec, path == ExecutionPath::kInstrumented);
}

void rnn_symbolic(const RnnGeom& g, SymbolicExecutor& exec, KernelMode mode,
                  ExecutionPath path) {
  if (path == ExecutionPath::kFast)
    rnn_fast_model(g, exec, mode);
  else
    rnn_instrumented_model(g, exec, mode);
}

// -- model registry ----------------------------------------------------

namespace {

std::vector<SymbolicModelEntry>& model_cells() {
  static std::vector<SymbolicModelEntry> cells;
  return cells;
}

}  // namespace

namespace detail {

SymbolicModelRegistration::SymbolicModelRegistration(
    std::initializer_list<SymbolicModelEntry> entries) {
  auto& cells = model_cells();
  cells.insert(cells.end(), entries.begin(), entries.end());
}

}  // namespace detail

bool has_symbolic_model(const std::string& op, KernelMode mode,
                        ExecutionPath path) {
  for (const SymbolicModelEntry& cell : model_cells()) {
    if (op == cell.op && mode == cell.mode && path == cell.path) return true;
  }
  return false;
}

std::vector<SymbolicModelEntry> all_symbolic_models() {
  std::vector<SymbolicModelEntry> cells = model_cells();
  std::sort(cells.begin(), cells.end(),
            [](const SymbolicModelEntry& a, const SymbolicModelEntry& b) {
              const int c = std::strcmp(a.op, b.op);
              if (c != 0) return c < 0;
              if (a.mode != b.mode) return static_cast<int>(a.mode) <
                                           static_cast<int>(b.mode);
              return static_cast<int>(a.path) < static_cast<int>(b.path);
            });
  return cells;
}

namespace {

const detail::SymbolicModelRegistration registration{
    {"conv2d.direct", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"conv2d.direct", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"conv2d.direct", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"conv2d.direct", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"conv2d.im2col", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"conv2d.im2col", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"conv2d.im2col", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"conv2d.im2col", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"dense", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"dense", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"dense", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"dense", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"relu", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"relu", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"relu", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"relu", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"maxpool2d", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"maxpool2d", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"maxpool2d", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"maxpool2d", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"avgpool2d", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"avgpool2d", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"avgpool2d", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"avgpool2d", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"softmax", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"softmax", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"softmax", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"softmax", KernelMode::kConstantFlow, ExecutionPath::kFast},
    {"elman-rnn", KernelMode::kDataDependent, ExecutionPath::kInstrumented},
    {"elman-rnn", KernelMode::kDataDependent, ExecutionPath::kFast},
    {"elman-rnn", KernelMode::kConstantFlow, ExecutionPath::kInstrumented},
    {"elman-rnn", KernelMode::kConstantFlow, ExecutionPath::kFast},
};

}  // namespace

}  // namespace sce::nn::kernels
