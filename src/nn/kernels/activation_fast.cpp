// Fast ReLU: one vector compare + blend per lane group.  The scalar
// kernels compute `v < 0 ? 0 : v` in both modes; the lane-wise blend
// reproduces that exactly (-0.0 and NaN both fail `v < 0` and pass
// through unchanged, as in the scalar kernel).
#include "nn/kernels/activation.hpp"
#include "nn/kernels/registry.hpp"
#include "nn/kernels/simd.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {

void relu_fast(const float* in, float* out, std::size_t n) {
  std::size_t i = 0;
#ifdef SCE_HAVE_VECTOR_EXTENSIONS
  const v8f zero = broadcast(0.0f);
  for (; i + kLanes <= n; i += kLanes) {
    const v8f v = loadu(&in[i]);
    storeu(&out[i], select(v < zero, zero, v));
  }
#endif
  for (; i < n; ++i) {
    const float v = in[i];
    out[i] = v < 0.0f ? 0.0f : v;
  }
}

namespace {
const detail::KernelRegistration registration{
    {"relu", KernelMode::kDataDependent, ExecutionPath::kFast,
     "vector compare + blend, branch-free"},
    {"relu", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "vector compare + blend, branch-free"},
};
}  // namespace

}  // namespace sce::nn::kernels
