// Fast Dense: register-blocked input-stationary GEMV.
//
// The instrumented kernel accumulates y[o] = bias[o] then, for i
// ascending, y[o] += x[i] * W[i][o] (skipping the whole row i when
// x[i] == 0 in data-dependent mode).  Each output is an independent
// accumulator, so vectorizing across o with i kept sequential preserves
// every output's rounding sequence exactly.  A tile of the output vector
// lives in registers across the entire input loop; the weight row slice
// is one contiguous vector load per tile vector.
//
// The data-dependent row skip stays a real branch: it elides the row's
// weight loads entirely, exactly like the scalar kernel, and skipping
// contributes nothing to any accumulator so the bits cannot differ.
#include "nn/kernels/dense.hpp"
#include "nn/kernels/registry.hpp"
#include "nn/kernels/simd.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {

namespace {

#ifdef SCE_HAVE_VECTOR_EXTENSIONS
/// One tile of NV vectors (NV * kLanes outputs) starting at o0.
template <std::size_t NV>
void gemv_tile(const DenseShape& s, std::size_t o0, bool skip_zero) {
  v8f acc[NV];
  for (std::size_t t = 0; t < NV; ++t)
    acc[t] = loadu(&s.bias[o0 + t * kLanes]);
  // Two input rows per iteration: each row's contribution still lands in
  // ascending-i order per accumulator, so the rounding sequence — and
  // the bits — match the one-row-at-a-time instrumented loop exactly.
  std::size_t i = 0;
  for (; i + 2 <= s.in_features; i += 2) {
    const float v0 = s.in[i];
    const float v1 = s.in[i + 1];
    const float* row0 = &s.weights[i * s.out_features + o0];
    // Hide the upcoming rows' memory latency behind this pair's
    // arithmetic; prefetching a row that ends up skipped is harmless.
    if (i + 4 < s.in_features)
      __builtin_prefetch(&s.weights[(i + 4) * s.out_features + o0]);
    if (!(skip_zero && v0 == 0.0f)) {
      const v8f vv = broadcast(v0);
      for (std::size_t t = 0; t < NV; ++t)
        acc[t] = acc[t] + vv * loadu(&row0[t * kLanes]);
    }
    if (!(skip_zero && v1 == 0.0f)) {
      const v8f vv = broadcast(v1);
      const float* row1 = row0 + s.out_features;
      for (std::size_t t = 0; t < NV; ++t)
        acc[t] = acc[t] + vv * loadu(&row1[t * kLanes]);
    }
  }
  for (; i < s.in_features; ++i) {
    const float v = s.in[i];
    if (skip_zero && v == 0.0f) continue;
    const v8f vv = broadcast(v);
    const float* row = &s.weights[i * s.out_features + o0];
    for (std::size_t t = 0; t < NV; ++t)
      acc[t] = acc[t] + vv * loadu(&row[t * kLanes]);
  }
  for (std::size_t t = 0; t < NV; ++t)
    storeu(&s.out[o0 + t * kLanes], acc[t]);
}
#endif

}  // namespace

void dense_fast(const DenseShape& s, KernelMode mode) {
  const bool skip_zero = mode == KernelMode::kDataDependent;
  std::size_t o0 = 0;
#ifdef SCE_HAVE_VECTOR_EXTENSIONS
  // Widest tile first: each tile re-streams the whole input vector, so a
  // wider tile amortizes the per-input broadcast and row-skip check over
  // more outputs (8 vector accumulators still fit the 16 ymm registers).
  for (; o0 + 8 * kLanes <= s.out_features; o0 += 8 * kLanes)
    gemv_tile<8>(s, o0, skip_zero);
  for (; o0 + 4 * kLanes <= s.out_features; o0 += 4 * kLanes)
    gemv_tile<4>(s, o0, skip_zero);
  for (; o0 + kLanes <= s.out_features; o0 += kLanes)
    gemv_tile<1>(s, o0, skip_zero);
#endif
  for (; o0 < s.out_features; ++o0) {
    float acc = s.bias[o0];
    for (std::size_t i = 0; i < s.in_features; ++i) {
      const float v = s.in[i];
      if (skip_zero && v == 0.0f) continue;
      acc = acc + v * s.weights[i * s.out_features + o0];
    }
    s.out[o0] = acc;
  }
}

namespace {
const detail::KernelRegistration registration{
    {"dense", KernelMode::kDataDependent, ExecutionPath::kFast,
     "register-blocked GEMV, scalar per-input row-skip branch kept"},
    {"dense", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "register-blocked GEMV, every row streamed"},
};
}  // namespace

}  // namespace sce::nn::kernels
