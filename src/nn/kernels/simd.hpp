// Private SIMD vocabulary of the fast kernels (src/nn/kernels/*_fast.cpp
// only — never include this from an instrumented TU or a public header).
//
// Built on GCC/Clang vector extensions: the semantics of every operation
// are plain IEEE-754 single-precision lane arithmetic, identical whether
// the compiler lowers a v8f to one AVX register, two SSE registers or
// eight scalars.  That ISA-independence is what lets the fast kernels
// promise bit-for-bit equality with the scalar instrumented loops on any
// target: the *order* of operations per output element is fixed by the
// kernel, and each operation is the same IEEE operation everywhere.
//
// Two rules keep that promise honest:
//  * vectorize across independent outputs (pixels, output features) —
//    never across a reduction; reduction indices advance sequentially so
//    each lane's accumulation order matches the scalar kernel's.
//  * no FMA: multiplies and adds stay separate (sce_nn builds with
//    -ffp-contract=off), because the instrumented loops round after the
//    multiply.
//
// The skip-aware accumulate mirrors the instrumented zero-skip *exactly*,
// including the corner cases: a skipped lane keeps its old accumulator
// bits (never "adds zero", which would turn -0.0 into +0.0), and a NaN
// activation is not equal to zero, so it participates — just as the
// scalar `if (v == 0.0f) continue;` does.
#pragma once

#include <cstddef>
#include <cstring>

namespace sce::nn::kernels {

#if defined(__GNUC__) || defined(__clang__)
#define SCE_HAVE_VECTOR_EXTENSIONS 1
#endif

#ifdef SCE_HAVE_VECTOR_EXTENSIONS

inline constexpr std::size_t kLanes = 8;

typedef float v8f __attribute__((vector_size(kLanes * sizeof(float))));
typedef int v8i __attribute__((vector_size(kLanes * sizeof(int))));

inline v8f loadu(const float* p) {
  v8f v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void storeu(float* p, v8f v) { std::memcpy(p, &v, sizeof(v)); }

inline v8f broadcast(float x) { return v8f{x, x, x, x, x, x, x, x}; }

/// Lane-wise select: mask lanes are comparison results (all-ones /
/// all-zeros); a set lane takes `a`, a clear lane takes `b`.
inline v8f select(v8i mask, v8f a, v8f b) { return mask ? a : b; }

/// acc + v*w where lanes with v == 0.0f keep their accumulator bits —
/// the vector form of the instrumented data-dependent zero-skip.
inline v8f mac_skip_zero(v8f acc, v8f v, v8f w) {
  return select(v == broadcast(0.0f), acc, acc + v * w);
}

/// acc + v*w on lanes where `valid` is nonzero; invalid lanes keep their
/// accumulator bits (the direct algorithm's out-of-bounds skip).
inline v8f mac_where(v8f valid, v8f acc, v8f v, v8f w) {
  return select(valid != broadcast(0.0f), acc + v * w, acc);
}

#else  // scalar fallback for compilers without vector extensions

inline constexpr std::size_t kLanes = 1;

#endif

/// Scalar twins of the vector accumulate steps, used for tail elements so
/// a tail lane computes exactly what a vector lane would.
inline float scalar_mac_skip_zero(float acc, float v, float w) {
  return v == 0.0f ? acc : acc + v * w;
}

inline float scalar_mac_where(bool valid, float acc, float v, float w) {
  return valid ? acc + v * w : acc;
}

}  // namespace sce::nn::kernels
