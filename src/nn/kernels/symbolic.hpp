// Symbolic kernel descriptions: every kernel in this directory, restated
// as a program over an abstract executor instead of float buffers.
//
// The real kernels compute on concrete floats and report their dynamic
// behaviour to a TraceSink; these models replay the *same loop nests and
// event sites* against a SymbolicExecutor, whose values carry only a
// secrecy taint.  Loop trip counts stay concrete (shapes come from the
// InferencePlan's shape inference), data stays symbolic — so one run of a
// model covers every input of that shape, and the engine behind the
// executor (src/analysis/symexec) can decide which trace aspects *can*
// vary with the secret input.  That derived LeakageContract is compared
// against the hand-declared one: a lying or stale declaration becomes a
// static lint failure instead of waiting for the dynamic oracle.
//
// Two fidelity conventions, one per execution path:
//  * Instrumented models mirror the kernel's *emitted sink events*
//    exactly (same sites, same loop structure, same guarded regions).
//    The dynamic trace oracle validates this mirror end to end: derived
//    claims must match what RecordingSink probes actually observe.
//  * Fast models mirror the *source structure of the generated code*
//    (a lane blend is branchless; a scalar row-skip is a real branch; a
//    source loop inside a skipped region counts as structural branches
//    even if the compiler unrolls it — conservative in the direction
//    that never hides a leak).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "nn/kernels/execution_path.hpp"

namespace sce::nn {
enum class KernelMode;
enum class ConvAlgorithm;
}

namespace sce::nn::kernels {

/// Two-point secrecy lattice: the abstract "value" of the symbolic
/// domain.  kSecret marks data derived from the model input; parameters
/// (weights, biases) and constants are kPublic.
enum class SymTaint : std::uint8_t { kPublic = 0, kSecret = 1 };

inline SymTaint join(SymTaint a, SymTaint b) {
  return (a == SymTaint::kSecret || b == SymTaint::kSecret)
             ? SymTaint::kSecret
             : SymTaint::kPublic;
}

/// A symbolic scalar: no magnitude, only provenance.
struct SymValue {
  SymTaint taint = SymTaint::kPublic;
  bool secret() const { return taint == SymTaint::kSecret; }
};

inline SymValue join(SymValue a, SymValue b) {
  return SymValue{join(a.taint, b.taint)};
}
inline SymValue join(SymValue a, SymValue b, SymValue c) {
  return join(join(a, b), c);
}

/// Engine-issued handle to a symbolic tensor (per-element taints).
struct SymBuffer {
  std::size_t id = 0;
};

/// Source location of a leak-relevant construct inside a symbolic model.
/// The file/line point into the model translation unit; the label names
/// the mirrored kernel construct (e.g. "dense row-skip (x[i]==0)"), so a
/// witness survives even when the model and kernel files diverge.
struct SymSite {
  const char* file = "";
  int line = 0;
  const char* label = "";
};

#define SCE_SYM_SITE(label) \
  (::sce::nn::kernels::SymSite{__FILE__, __LINE__, (label)})

/// The abstract machine a symbolic kernel model runs against.  Mirrors
/// the TraceSink event vocabulary (load/store/branch/retire/structural)
/// plus the control construct the sink cannot express: a region whose
/// *execution* depends on a predicate (`if_else`), which is what turns
/// value taint into count/address variance.
///
/// Contract for model authors:
///  * Use `load`/`store` for accesses the real kernel performs (traced
///    or machine-level), `value`/`assign` for taint bookkeeping with no
///    memory traffic (views, register copies).
///  * Use plain C++ control flow for public predicates (loop bounds,
///    padding tests) and `branch`/`if_else` for data predicates.
///  * Arm thunks must only move engine state upward (accumulate via
///    join) — both arms are executed abstractly.
class SymbolicExecutor {
 public:
  virtual ~SymbolicExecutor() = default;

  /// The kernel's (secret) input activations.
  virtual SymBuffer input_buffer() = 0;
  /// A (public) parameter tensor: weights, biases.
  virtual SymBuffer param_buffer(const char* name, std::size_t numel) = 0;
  /// The kernel's output activations; its final taint decides the
  /// derived TaintTransfer.
  virtual SymBuffer output_buffer(std::size_t numel) = 0;
  /// Workspace scratch (im2col patches, RNN accumulator).
  virtual SymBuffer scratch_buffer(const char* name, std::size_t numel) = 0;

  /// A memory read/write the kernel performs, at a public (loop-derived)
  /// element index.
  virtual SymValue load(SymBuffer buffer, std::size_t index) = 0;
  virtual void store(SymBuffer buffer, std::size_t index, SymValue v) = 0;
  /// A read whose *address* is itself data-derived (table lookup keyed
  /// on an activation): leaks through the address stream no matter what
  /// the control flow does.
  virtual SymValue load_indexed(const SymSite& site, SymBuffer buffer,
                                SymValue index) = 0;
  /// Taint bookkeeping without memory traffic.
  virtual SymValue value(SymBuffer buffer, std::size_t index) = 0;
  virtual void assign(SymBuffer buffer, std::size_t index, SymValue v) = 0;

  /// Instruction-count and loop-back-edge bookkeeping (the sink's
  /// retire/structural_branches).
  virtual void retire(std::uint64_t instructions) = 0;
  virtual void structural_branches(std::uint64_t count) = 0;

  /// An emitted conditional branch that does NOT guard any events (the
  /// ReLU sign test: both continuations do identical work).
  virtual void branch(const SymSite& site, SymValue predicate) = 0;
  /// A conditional branch guarding divergent work.  Executes both arms
  /// abstractly and diffs their event streams: arms that differ in
  /// memory / branch / retire events make the corresponding aspect
  /// input-dependent when `predicate` is secret.
  virtual void if_else(const SymSite& site, SymValue predicate,
                       const std::function<void()>& then_arm,
                       const std::function<void()>& else_arm) = 0;

  /// The kernel draws inference-time randomness (a masking
  /// countermeasure would; none of the stock kernels do).
  virtual SymValue rng_draw(const SymSite& site) = 0;

  /// Called by Layer::symbolic_forward's base default: this layer has no
  /// symbolic model, so nothing can be derived for it.
  virtual void unmodeled(const char* why) = 0;
};

/// Per-op geometry, mirroring the pointerless half of the kernel shape
/// structs.  Layers fill these exactly the way forward_into fills
/// Conv2DShape/DenseShape/....
struct DenseGeom {
  std::size_t in_features = 0;
  std::size_t out_features = 0;
};

struct Conv2DGeom {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 0;
  std::size_t padding = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t out_h = 0;
  std::size_t out_w = 0;
};

struct Pool2DGeom {
  std::size_t channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t out_h = 0;
  std::size_t out_w = 0;
  std::size_t window = 0;
};

struct RnnGeom {
  std::size_t t_steps = 0;
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 0;
};

/// Symbolic models, one per registered op, covering both modes and both
/// paths (the `path` argument selects which implementation's structure
/// is replayed).  Implemented in symbolic_models.cpp.
void conv2d_symbolic(const Conv2DGeom& g, ConvAlgorithm algorithm,
                     SymbolicExecutor& exec, KernelMode mode,
                     ExecutionPath path);
void dense_symbolic(const DenseGeom& g, SymbolicExecutor& exec,
                    KernelMode mode, ExecutionPath path);
void relu_symbolic(std::size_t n, SymbolicExecutor& exec, KernelMode mode,
                   ExecutionPath path);
void maxpool2d_symbolic(const Pool2DGeom& g, SymbolicExecutor& exec,
                        KernelMode mode, ExecutionPath path);
void avgpool2d_symbolic(const Pool2DGeom& g, SymbolicExecutor& exec,
                        ExecutionPath path);
void softmax_symbolic(std::size_t n, SymbolicExecutor& exec,
                      ExecutionPath path);
void rnn_symbolic(const RnnGeom& g, SymbolicExecutor& exec, KernelMode mode,
                  ExecutionPath path);

/// Registry of modeled (op, mode, path) cells, self-registered by
/// symbolic_models.cpp the way kernel TUs register KernelEntries.  The
/// completeness test walks kernels::all_kernels() and requires
/// has_symbolic_model for every cell, so a new kernel cannot land
/// unanalyzed.
struct SymbolicModelEntry {
  const char* op;
  KernelMode mode;
  ExecutionPath path;
};

bool has_symbolic_model(const std::string& op, KernelMode mode,
                        ExecutionPath path);

/// Every modeled cell, sorted by (op, mode, path).
std::vector<SymbolicModelEntry> all_symbolic_models();

namespace detail {
struct SymbolicModelRegistration {
  explicit SymbolicModelRegistration(
      std::initializer_list<SymbolicModelEntry> entries);
};
}  // namespace detail

}  // namespace sce::nn::kernels
