// Elman RNN kernel family: h_t = ReLU(Wx x_t + Wh h_{t-1} + b), h_0 = 0.
//
// Each timestep is three phases over a memory-resident pre-activation
// accumulator `acc` (workspace scratch): bias init, two input-stationary
// AXPY sweeps (x_t against Wx, then h_{t-1} against Wh — all reads of h
// precede its rewrite), then a ReLU writing the new h.  The fast kernel
// keeps the phase structure and i order and vectorizes each AXPY across
// the hidden dimension, which preserves every acc[j]'s accumulation
// sequence exactly.
#pragma once

#include <cstddef>

#include "nn/kernels/execution_path.hpp"
#include "uarch/trace.hpp"

namespace sce::nn {
enum class KernelMode;
}

namespace sce::nn::kernels {

/// `h` is the caller's output tensor, pre-zeroed (h_0 = 0); `acc` is
/// scratch of hidden_dim floats.  Weights: wx {input_dim, hidden},
/// wh {hidden, hidden}, both input-stationary rows.
struct RnnShape {
  const float* in = nullptr;
  const float* wx = nullptr;
  const float* wh = nullptr;
  const float* bias = nullptr;
  float* h = nullptr;
  float* acc = nullptr;
  std::size_t t_steps = 0;
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 0;
};

void rnn_instrumented(const RnnShape& s, uarch::TraceSink& sink,
                      KernelMode mode);
void rnn_scalar(const RnnShape& s, KernelMode mode);
/// Vectorized AXPY sweeps; the data-dependent row skip stays a real
/// scalar branch (as in Dense).
void rnn_fast(const RnnShape& s, KernelMode mode);

}  // namespace sce::nn::kernels
