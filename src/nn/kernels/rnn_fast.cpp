// Fast Elman RNN: the same per-timestep phase structure with each AXPY
// sweep vectorized across the hidden dimension.
//
// The accumulator stays in memory (scratch), because the phase order is
// semantically load-bearing: every read of h_{t-1} in the Wh sweep must
// happen before the ReLU phase overwrites h.  Within a sweep, i advances
// in the scalar order and each acc[j] is touched once per non-skipped i,
// so vectorizing across j changes nothing about any accumulator's
// rounding sequence.  Row skips (x_t[i] == 0, h_{t-1}[i] == 0) stay real
// scalar branches, exactly like the scalar kernel and the Dense fast
// path.
#include <cstring>

#include "nn/kernels/registry.hpp"
#include "nn/kernels/rnn.hpp"
#include "nn/kernels/simd.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {

namespace {

/// acc[j] += v * row[j] for all j — one vector load/store pair per block.
inline void axpy(float* acc, float v, const float* row, std::size_t n) {
  std::size_t j = 0;
#ifdef SCE_HAVE_VECTOR_EXTENSIONS
  const v8f vv = broadcast(v);
  for (; j + kLanes <= n; j += kLanes)
    storeu(&acc[j], loadu(&acc[j]) + vv * loadu(&row[j]));
#endif
  for (; j < n; ++j) acc[j] = acc[j] + v * row[j];
}

}  // namespace

void rnn_fast(const RnnShape& s, KernelMode mode) {
  const std::size_t hidden = s.hidden_dim;
  const bool skip_zero = mode == KernelMode::kDataDependent;

  for (std::size_t t = 0; t < s.t_steps; ++t) {
    std::memcpy(s.acc, s.bias, hidden * sizeof(float));
    const float* xt = &s.in[t * s.input_dim];
    for (std::size_t i = 0; i < s.input_dim; ++i) {
      const float v = xt[i];
      if (skip_zero && v == 0.0f) continue;
      axpy(s.acc, v, &s.wx[i * hidden], hidden);
    }
    for (std::size_t i = 0; i < hidden; ++i) {
      const float v = s.h[i];
      if (skip_zero && v == 0.0f) continue;
      axpy(s.acc, v, &s.wh[i * hidden], hidden);
    }
    // h = ReLU(acc): the same `v < 0 ? 0 : v` blend as the ReLU layer.
    std::size_t j = 0;
#ifdef SCE_HAVE_VECTOR_EXTENSIONS
    const v8f zero = broadcast(0.0f);
    for (; j + kLanes <= hidden; j += kLanes) {
      const v8f v = loadu(&s.acc[j]);
      storeu(&s.h[j], select(v < zero, zero, v));
    }
#endif
    for (; j < hidden; ++j) {
      const float v = s.acc[j];
      s.h[j] = v < 0.0f ? 0.0f : v;
    }
  }
}

namespace {
const detail::KernelRegistration registration{
    {"elman-rnn", KernelMode::kDataDependent, ExecutionPath::kFast,
     "vectorized AXPY sweeps, scalar row-skip branches kept, blend ReLU"},
    {"elman-rnn", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "vectorized AXPY sweeps, every row streamed, blend ReLU"},
};
}  // namespace

}  // namespace sce::nn::kernels
