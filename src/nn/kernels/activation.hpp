// ReLU kernel family.  Both kernel modes compute `v < 0 ? 0 : v`
// elementwise; they differ only in how the instrumented kernel reports
// the sign test (a real branch event in data-dependent mode, a fixed
// branchless cost in constant-flow).  The fast kernel is one vector
// blend per lane group — bit-identical including -0.0 (kept: -0.0 < 0 is
// false) and NaN (kept: comparisons with NaN are false).
#pragma once

#include <cstddef>

#include "nn/kernels/execution_path.hpp"
#include "uarch/trace.hpp"

namespace sce::nn {
enum class KernelMode;
}

namespace sce::nn::kernels {

void relu_instrumented(const float* in, float* out, std::size_t n,
                       uarch::TraceSink& sink, KernelMode mode);
void relu_scalar(const float* in, float* out, std::size_t n, KernelMode mode);
void relu_fast(const float* in, float* out, std::size_t n);

}  // namespace sce::nn::kernels
