// Dense (fully connected) kernel family.
//
// The instrumented kernel is input-stationary: weights are {in, out}, the
// output vector is the accumulator, and each input activation streams its
// weight row into it (in data-dependent mode a zero activation skips its
// whole row — the sparse-GEMM optimization that makes this layer the
// strongest leak source).  The fast kernel keeps the exact accumulation
// order (i ascending per output) and vectorizes across outputs, holding
// register tiles of the output vector across the whole input loop.
#pragma once

#include <cstddef>

#include "nn/kernels/execution_path.hpp"
#include "uarch/trace.hpp"

namespace sce::nn {
enum class KernelMode;
}

namespace sce::nn::kernels {

/// Weights are {in_features, out_features} flattened (each input owns a
/// contiguous row); input is a flat vector of in_features.
struct DenseShape {
  const float* in = nullptr;
  const float* weights = nullptr;
  const float* bias = nullptr;
  float* out = nullptr;
  std::size_t in_features = 0;
  std::size_t out_features = 0;
};

void dense_instrumented(const DenseShape& s, uarch::TraceSink& sink,
                        KernelMode mode);
/// DiscardSink instantiation of the same template — the scalar baseline.
void dense_scalar(const DenseShape& s, KernelMode mode);

/// Fast path: register-blocked input-stationary GEMV, bit-identical to
/// the instrumented kernel in both modes.  Note the data-dependent row
/// skip remains a real (scalar, per-input) branch here.
void dense_fast(const DenseShape& s, KernelMode mode);

}  // namespace sce::nn::kernels
