// ExecutionPath: the second axis of kernel dispatch, orthogonal to
// KernelMode.
//
// Every layer owns (up to) two implementations of each kernel mode:
//
//  * kInstrumented — the Sink-emitting reference loops.  These are the
//    leakage ground truth: every load/branch/retire they report is what
//    the trace oracle cross-validates and what campaigns measure.  With a
//    discarding sink they instantiate over DiscardSink, which compiles
//    the trace calls away but keeps the scalar loop structure — the
//    "scalar planned path" the fast kernels are benchmarked against.
//  * kFast — SIMD/blocked production-shaped kernels (im2col + tiled GEMM
//    for conv2d, register-blocked GEMV for dense, branch-free vectorized
//    activations).  They emit no trace events and are pinned bit-for-bit
//    to the instrumented outputs: per output element the same IEEE
//    operations execute in the same order (vectorization runs across
//    independent outputs, never across a reduction, and contraction is
//    disabled), so fast == instrumented is asserted with memcmp.
//
// Path selection is a safety invariant, not a hint: an observing sink
// (CountingSink, RecordingSink, a PMU adapter) always forces the
// instrumented path, so campaigns, sweeps and the trace oracle can never
// accidentally measure an untraced kernel.  The fast path is reachable
// only when the sink provably discards everything.
#pragma once

#include <string>

namespace sce::uarch {
class TraceSink;
}

namespace sce::nn {

enum class ExecutionPath { kInstrumented, kFast };

std::string to_string(ExecutionPath path);

namespace kernels {

/// The path that will actually execute when `requested` meets `sink`:
/// an observing sink wins over any request (instrumentation is never
/// silently dropped); a discarding sink honours the request.
ExecutionPath select_path(const uarch::TraceSink& sink,
                          ExecutionPath requested);

}  // namespace kernels
}  // namespace sce::nn
