// Softmax kernel family (numerically stable exp-normalize over a rank-1
// tensor).  Both kernel modes run identical code — softmax has no useful
// data-dependent shortcut — so the kernels take no mode parameter.  The
// fast kernel is the same three scalar passes untraced: the libm exp()
// calls dominate and the max/sum reductions are order-sensitive, so
// vectorizing would either change bits or buy nothing.
#pragma once

#include <cstddef>

#include "nn/kernels/execution_path.hpp"
#include "uarch/trace.hpp"

namespace sce::nn::kernels {

void softmax_instrumented(const float* in, float* out, std::size_t n,
                          uarch::TraceSink& sink);
void softmax_scalar(const float* in, float* out, std::size_t n);
void softmax_fast(const float* in, float* out, std::size_t n);

}  // namespace sce::nn::kernels
