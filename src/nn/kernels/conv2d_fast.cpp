// Fast Conv2D: transposed im2col + register-tiled GEMM, pinned
// bit-for-bit to the instrumented kernels.
//
// Both instrumented algorithms accumulate, per output element (oc, p):
//
//   acc = bias[oc]; then += v_j * w_j for j ascending over the patch
//   (j = (ic, ky, kx) flattened)
//
// with three policies for which j contribute:
//   * data-dependent (both algorithms): j with v_j != 0  — the zero-skip
//     keeps the accumulator bits unchanged (out-of-bounds patch entries
//     are zero, so the direct kernel's OOB skip coincides with it);
//   * constant-flow im2col: every j (padding zeros are added as 0 * w);
//   * constant-flow direct: in-bounds j only (padding positions are
//     never touched, so with padding > 0 a validity mask is required —
//     adding 0 * w instead would flip a -0.0 accumulator to +0.0).
//
// The fast kernel reproduces exactly that: the patch matrix is stored
// transposed (patch index major) so 8 consecutive *pixels* form one
// vector lane group, j advances sequentially — every lane's accumulation
// order equals the scalar kernel's — and skips are lane blends that keep
// the old accumulator bits.  Multiplies and adds stay separate (the
// library builds with -ffp-contract=off), so each step rounds exactly
// like the scalar `acc += v * w`.
#include <cstring>

#include "nn/conv.hpp"
#include "nn/kernels/conv2d.hpp"
#include "nn/kernels/registry.hpp"
#include "nn/kernels/simd.hpp"

namespace sce::nn::kernels {

namespace {

/// Which j indices contribute to an output accumulator.
enum class Gemm { kDense, kSkipZero, kMaskValid };

/// Fill scratch 0 with the transposed patch matrix Pt[patch_len][pixels]
/// (out-of-bounds positions zero-filled, exactly the values the
/// instrumented im2col phase would store row-major).
void fill_patches_transposed(const Conv2DShape& s, float* pt,
                             std::size_t pixels) {
  const bool contiguous = s.stride == 1 && s.padding == 0;
  std::size_t j = 0;
  for (std::size_t ic = 0; ic < s.in_channels; ++ic) {
    for (std::size_t ky = 0; ky < s.kernel; ++ky) {
      for (std::size_t kx = 0; kx < s.kernel; ++kx, ++j) {
        float* row = &pt[j * pixels];
        if (contiguous) {
          // Valid convolution, unit stride: each output row is a
          // contiguous slice of the input row.
          for (std::size_t oy = 0; oy < s.out_h; ++oy)
            std::memcpy(&row[oy * s.out_w],
                        &s.in[(ic * s.in_h + oy + ky) * s.in_w + kx],
                        s.out_w * sizeof(float));
          continue;
        }
        for (std::size_t oy = 0; oy < s.out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
              static_cast<std::ptrdiff_t>(s.padding);
          float* out_row = &row[oy * s.out_w];
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(s.in_h)) {
            for (std::size_t ox = 0; ox < s.out_w; ++ox) out_row[ox] = 0.0f;
            continue;
          }
          const float* in_row =
              &s.in[(ic * s.in_h + static_cast<std::size_t>(iy)) * s.in_w];
          for (std::size_t ox = 0; ox < s.out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
                static_cast<std::ptrdiff_t>(s.padding);
            out_row[ox] =
                (ix >= 0 && ix < static_cast<std::ptrdiff_t>(s.in_w))
                    ? in_row[static_cast<std::size_t>(ix)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

/// Validity mask Vt[kernel*kernel][pixels] (1.0 in-bounds, 0.0 padding),
/// shared across input channels.
void fill_validity(const Conv2DShape& s, float* vt, std::size_t pixels) {
  std::size_t kk = 0;
  for (std::size_t ky = 0; ky < s.kernel; ++ky) {
    for (std::size_t kx = 0; kx < s.kernel; ++kx, ++kk) {
      float* row = &vt[kk * pixels];
      for (std::size_t oy = 0; oy < s.out_h; ++oy) {
        const std::ptrdiff_t iy =
            static_cast<std::ptrdiff_t>(oy * s.stride + ky) -
            static_cast<std::ptrdiff_t>(s.padding);
        const bool y_ok =
            iy >= 0 && iy < static_cast<std::ptrdiff_t>(s.in_h);
        for (std::size_t ox = 0; ox < s.out_w; ++ox) {
          const std::ptrdiff_t ix =
              static_cast<std::ptrdiff_t>(ox * s.stride + kx) -
              static_cast<std::ptrdiff_t>(s.padding);
          const bool ok =
              y_ok && ix >= 0 && ix < static_cast<std::ptrdiff_t>(s.in_w);
          row[oy * s.out_w + ox] = ok ? 1.0f : 0.0f;
        }
      }
    }
  }
}

/// GEMM over one output-channel tile of TC channels: 8 pixels per vector
/// step, TC accumulators live in registers across the whole j loop.
template <Gemm policy, std::size_t TC>
void gemm_tile(const Conv2DShape& s, const float* pt, const float* vt,
               std::size_t oc0, std::size_t pixels, std::size_t patch_len,
               std::size_t k2) {
  std::size_t p = 0;
#ifdef SCE_HAVE_VECTOR_EXTENSIONS
  for (; p + kLanes <= pixels; p += kLanes) {
    v8f acc[TC];
    for (std::size_t t = 0; t < TC; ++t) acc[t] = broadcast(s.bias[oc0 + t]);
    std::size_t kk = 0;
    for (std::size_t j = 0; j < patch_len; ++j) {
      const v8f v = loadu(&pt[j * pixels + p]);
      v8f valid{};
      if constexpr (policy == Gemm::kMaskValid)
        valid = loadu(&vt[kk * pixels + p]);
      for (std::size_t t = 0; t < TC; ++t) {
        const v8f w = broadcast(s.weights[(oc0 + t) * patch_len + j]);
        if constexpr (policy == Gemm::kDense)
          acc[t] = acc[t] + v * w;
        else if constexpr (policy == Gemm::kSkipZero)
          acc[t] = mac_skip_zero(acc[t], v, w);
        else
          acc[t] = mac_where(valid, acc[t], v, w);
      }
      if (++kk == k2) kk = 0;
    }
    for (std::size_t t = 0; t < TC; ++t)
      storeu(&s.out[(oc0 + t) * pixels + p], acc[t]);
  }
#endif
  // Pixel tail (and the whole range without vector extensions): the same
  // j-ordered accumulation, one scalar lane at a time.
  for (; p < pixels; ++p) {
    for (std::size_t t = 0; t < TC; ++t) {
      float acc = s.bias[oc0 + t];
      std::size_t kk = 0;
      for (std::size_t j = 0; j < patch_len; ++j) {
        const float v = pt[j * pixels + p];
        const float w = s.weights[(oc0 + t) * patch_len + j];
        if constexpr (policy == Gemm::kDense)
          acc = acc + v * w;
        else if constexpr (policy == Gemm::kSkipZero)
          acc = scalar_mac_skip_zero(acc, v, w);
        else
          acc = scalar_mac_where(vt[kk * pixels + p] != 0.0f, acc, v, w);
        if (++kk == k2) kk = 0;
      }
      s.out[(oc0 + t) * pixels + p] = acc;
    }
  }
}

template <Gemm policy>
void gemm(const Conv2DShape& s, const float* pt, const float* vt,
          std::size_t pixels, std::size_t patch_len, std::size_t k2) {
  std::size_t oc0 = 0;
  for (; oc0 + 4 <= s.out_channels; oc0 += 4)
    gemm_tile<policy, 4>(s, pt, vt, oc0, pixels, patch_len, k2);
  switch (s.out_channels - oc0) {
    case 3:
      gemm_tile<policy, 3>(s, pt, vt, oc0, pixels, patch_len, k2);
      break;
    case 2:
      gemm_tile<policy, 2>(s, pt, vt, oc0, pixels, patch_len, k2);
      break;
    case 1:
      gemm_tile<policy, 1>(s, pt, vt, oc0, pixels, patch_len, k2);
      break;
    default:
      break;
  }
}

}  // namespace

void conv2d_fast(const Conv2DShape& s, Workspace& workspace,
                 ConvAlgorithm algorithm, KernelMode mode) {
  const std::size_t pixels = s.out_h * s.out_w;
  const std::size_t patch_len = s.in_channels * s.kernel * s.kernel;
  const std::size_t k2 = s.kernel * s.kernel;
  if (pixels == 0 || patch_len == 0) return;

  // Same slot (and element count) as the instrumented im2col scratch,
  // transposed — a warmed plan switches paths without reallocating.
  Tensor& patches = workspace.scratch(0, patch_len, pixels);
  float* pt = patches.data();
  fill_patches_transposed(s, pt, pixels);

  if (mode == KernelMode::kDataDependent) {
    // Both algorithms skip exactly the zero patch entries (out-of-bounds
    // entries are zero, so the direct kernel's bounds skip is subsumed).
    gemm<Gemm::kSkipZero>(s, pt, nullptr, pixels, patch_len, k2);
    return;
  }
  if (algorithm == ConvAlgorithm::kDirect && s.padding > 0) {
    // Constant-flow direct never touches padding positions; mask them so
    // a -0.0 accumulator is not perturbed by adding +0.0.
    Tensor& validity = workspace.scratch(1, k2, pixels);
    float* vt = validity.data();
    fill_validity(s, vt, pixels);
    gemm<Gemm::kMaskValid>(s, pt, vt, pixels, patch_len, k2);
    return;
  }
  gemm<Gemm::kDense>(s, pt, nullptr, pixels, patch_len, k2);
}

namespace {
const detail::KernelRegistration registration{
    {"conv2d.direct", KernelMode::kDataDependent, ExecutionPath::kFast,
     "transposed im2col + 8x4 register-tiled GEMM, lane-blend zero skip"},
    {"conv2d.direct", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "transposed im2col + 8x4 register-tiled GEMM, validity-masked"},
    {"conv2d.im2col", KernelMode::kDataDependent, ExecutionPath::kFast,
     "transposed im2col + 8x4 register-tiled GEMM, lane-blend zero skip"},
    {"conv2d.im2col", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "transposed im2col + 8x4 register-tiled dense GEMM"},
};
}  // namespace

}  // namespace sce::nn::kernels
