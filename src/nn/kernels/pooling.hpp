// Pooling kernel family: MaxPool2D and AvgPool2D over non-overlapping
// square windows (stride == window, trailing remainder dropped).
//
// Window elements are gathered at stride `window` per output pixel, which
// defeats contiguous vector loads, and pooling is a vanishing fraction of
// inference cost next to conv/dense — so the fast kernels are the scalar
// recurrences with the trace machinery compiled out, kept bit-identical
// by construction (same element order, same compare/accumulate ops).
#pragma once

#include <cstddef>

#include "nn/kernels/execution_path.hpp"
#include "uarch/trace.hpp"

namespace sce::nn {
enum class KernelMode;
}

namespace sce::nn::kernels {

/// Input is CHW; output is {channels, out_h, out_w} with
/// out_h = in_h / window, out_w = in_w / window.
struct Pool2DShape {
  const float* in = nullptr;
  float* out = nullptr;
  std::size_t channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t out_h = 0;
  std::size_t out_w = 0;
  std::size_t window = 0;
};

void maxpool2d_instrumented(const Pool2DShape& s, uarch::TraceSink& sink,
                            KernelMode mode);
void maxpool2d_scalar(const Pool2DShape& s, KernelMode mode);
void maxpool2d_fast(const Pool2DShape& s);

/// AvgPool has no data-dependent behaviour in either mode; the mode
/// parameter is deliberately absent.
void avgpool2d_instrumented(const Pool2DShape& s, uarch::TraceSink& sink);
void avgpool2d_scalar(const Pool2DShape& s);
void avgpool2d_fast(const Pool2DShape& s);

}  // namespace sce::nn::kernels
