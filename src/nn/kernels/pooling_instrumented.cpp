// Instrumented pooling kernels — moved verbatim from nn/pool.cpp and
// nn/avgpool.cpp.
#include "nn/kernels/pooling.hpp"

#include "nn/kernels/registry.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
// The instrumented loop bodies below were moved verbatim from the layer
// translation units, where unqualified `detail::` named sce::nn::detail.
// Re-export the cost-model constants here so the moved text still
// compiles unchanged inside kernels::detail's enclosing scope.
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

template <typename Sink>
void maxpool_kernel(const Pool2DShape& s, Sink& sink, KernelMode mode) {
  const float* in_data = s.in;
  float* out_data = s.out;

  const std::uintptr_t max_update_site = SCE_BRANCH_SITE();

  for (std::size_t c = 0; c < s.channels; ++c) {
    for (std::size_t oy = 0; oy < s.out_h; ++oy) {
      for (std::size_t ox = 0; ox < s.out_w; ++ox) {
        float best = 0.0f;
        bool first = true;
        for (std::size_t wy = 0; wy < s.window; ++wy) {
          for (std::size_t wx = 0; wx < s.window; ++wx) {
            const std::size_t idx =
                (c * s.in_h + (oy * s.window + wy)) * s.in_w +
                (ox * s.window + wx);
            const float v = in_data[idx];
            sink.load(&in_data[idx], sizeof(float));
            if (first) {
              best = v;
              first = false;
              sink.retire(detail::kLoopOverhead);
              continue;
            }
            if (mode == KernelMode::kDataDependent) {
              // Which window element is the max depends on the data; the
              // update is a real conditional branch.
              const bool update = v > best;
              sink.branch(max_update_site, update);
              if (update) best = v;
              sink.retire(detail::kCompareInstructions);
            } else {
              // Branchless max (cmov / maxss).
              best = v > best ? v : best;
              sink.retire(detail::kCompareInstructions + 1);
            }
          }
        }
        const std::size_t out_idx = (c * s.out_h + oy) * s.out_w + ox;
        out_data[out_idx] = best;
        sink.store(&out_data[out_idx], sizeof(float));
        sink.structural_branches(s.window * s.window + s.window + 1);
      }
    }
  }
}

template <typename Sink>
void avgpool_kernel(const Pool2DShape& s, Sink& sink) {
  const float* in_data = s.in;
  float* out_data = s.out;
  const float inv_area = 1.0f / static_cast<float>(s.window * s.window);

  for (std::size_t c = 0; c < s.channels; ++c) {
    for (std::size_t oy = 0; oy < s.out_h; ++oy) {
      for (std::size_t ox = 0; ox < s.out_w; ++ox) {
        float sum = 0.0f;
        for (std::size_t wy = 0; wy < s.window; ++wy) {
          for (std::size_t wx = 0; wx < s.window; ++wx) {
            const std::size_t idx =
                (c * s.in_h + (oy * s.window + wy)) * s.in_w +
                (ox * s.window + wx);
            sum += in_data[idx];
            sink.load(&in_data[idx], sizeof(float));
            sink.retire(detail::kLoopOverhead + 1);
          }
        }
        const std::size_t out_idx = (c * s.out_h + oy) * s.out_w + ox;
        out_data[out_idx] = sum * inv_area;
        sink.store(&out_data[out_idx], sizeof(float));
        sink.retire(1);
        sink.structural_branches(s.window * s.window + s.window + 1);
      }
    }
  }
}

}  // namespace

void maxpool2d_instrumented(const Pool2DShape& s, uarch::TraceSink& sink,
                            KernelMode mode) {
  maxpool_kernel(s, sink, mode);
}

void maxpool2d_scalar(const Pool2DShape& s, KernelMode mode) {
  uarch::DiscardSink sink;
  maxpool_kernel(s, sink, mode);
}

void avgpool2d_instrumented(const Pool2DShape& s, uarch::TraceSink& sink) {
  avgpool_kernel(s, sink);
}

void avgpool2d_scalar(const Pool2DShape& s) {
  uarch::DiscardSink sink;
  avgpool_kernel(s, sink);
}

namespace {
const detail::KernelRegistration registration{
    {"maxpool2d", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "windowed scan, per-element max-update branch traced"},
    {"maxpool2d", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "windowed scan, branchless max with fixed cost"},
    {"avgpool2d", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "windowed sum; data-independent by nature, modes identical"},
    {"avgpool2d", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "windowed sum; data-independent by nature, modes identical"},
};
}  // namespace

}  // namespace sce::nn::kernels
