#include "nn/kernels/execution_path.hpp"

#include "uarch/trace.hpp"

namespace sce::nn {

std::string to_string(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::kInstrumented:
      return "instrumented";
    case ExecutionPath::kFast:
      return "fast";
  }
  return "?";
}

namespace kernels {

ExecutionPath select_path(const uarch::TraceSink& sink,
                          ExecutionPath requested) {
  if (!sink.discards()) return ExecutionPath::kInstrumented;
  return requested;
}

}  // namespace kernels
}  // namespace sce::nn
