#include "nn/kernels/registry.hpp"

#include <algorithm>
#include <cstring>

#include "nn/layer.hpp"

namespace sce::nn::kernels {

namespace {

/// Function-local static: safe to use from other TUs' static
/// initializers (construct-on-first-use).
std::vector<KernelEntry>& table() {
  static std::vector<KernelEntry> entries;
  return entries;
}

bool entry_less(const KernelEntry& a, const KernelEntry& b) {
  const int op_cmp = std::strcmp(a.op, b.op);
  if (op_cmp != 0) return op_cmp < 0;
  if (a.mode != b.mode) return a.mode < b.mode;
  return a.path < b.path;
}

}  // namespace

const KernelEntry* find_kernel(const std::string& op, KernelMode mode,
                               ExecutionPath path) {
  for (const KernelEntry& e : table())
    if (op == e.op && e.mode == mode && e.path == path) return &e;
  return nullptr;
}

std::vector<KernelEntry> all_kernels() {
  std::vector<KernelEntry> entries = table();
  std::sort(entries.begin(), entries.end(), entry_less);
  return entries;
}

std::vector<std::string> all_ops() {
  std::vector<std::string> ops;
  for (const KernelEntry& e : all_kernels())
    if (ops.empty() || ops.back() != e.op) ops.emplace_back(e.op);
  return ops;
}

namespace detail {

KernelRegistration::KernelRegistration(
    std::initializer_list<KernelEntry> entries) {
  for (const KernelEntry& e : entries) table().push_back(e);
}

}  // namespace detail

}  // namespace sce::nn::kernels
