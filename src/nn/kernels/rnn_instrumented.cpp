// Instrumented Elman RNN kernel — moved verbatim from nn/rnn.cpp.
#include "nn/kernels/registry.hpp"
#include "nn/kernels/rnn.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
// The instrumented loop bodies below were moved verbatim from the layer
// translation units, where unqualified `detail::` named sce::nn::detail.
// Re-export the cost-model constants here so the moved text still
// compiles unchanged inside kernels::detail's enclosing scope.
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

template <typename Sink>
void forward_kernel(const RnnShape& s, Sink& sink, KernelMode mode) {
  const std::size_t input_dim = s.input_dim;
  const std::size_t hidden_dim = s.hidden_dim;
  const float* x = s.in;
  const float* wx = s.wx;
  const float* wh = s.wh;
  float* h = s.h;
  float* acc = s.acc;

  const std::uintptr_t input_skip_site = SCE_BRANCH_SITE();
  const std::uintptr_t hidden_skip_site = SCE_BRANCH_SITE();
  const std::uintptr_t relu_site = SCE_BRANCH_SITE();

  for (std::size_t t = 0; t < s.t_steps; ++t) {
    // acc = b
    for (std::size_t j = 0; j < hidden_dim; ++j) {
      acc[j] = s.bias[j];
      sink.load(&s.bias[j], sizeof(float));
      sink.store(&acc[j], sizeof(float));
    }
    sink.structural_branches(hidden_dim);
    // acc += Wx^T x_t, input-stationary with zero-skipping rows.
    const float* xt = &x[t * input_dim];
    for (std::size_t i = 0; i < input_dim; ++i) {
      const float v = xt[i];
      sink.load(&xt[i], sizeof(float));
      if (mode == KernelMode::kDataDependent) {
        const bool skip = (v == 0.0f);
        sink.branch(input_skip_site, skip);
        if (skip) {
          sink.retire(detail::kLoopOverhead);
          continue;
        }
      }
      const float* row = &wx[i * hidden_dim];
      for (std::size_t j = 0; j < hidden_dim; ++j) {
        sink.load(&row[j], sizeof(float));
        acc[j] += v * row[j];
        sink.store(&acc[j], sizeof(float));
        sink.retire(detail::kMacInstructions + detail::kLoopOverhead);
      }
      sink.structural_branches(hidden_dim + 1);
    }
    sink.structural_branches(input_dim);
    // acc += Wh^T h_{t-1}: ReLU-sparse hidden state skips its rows too.
    for (std::size_t i = 0; i < hidden_dim; ++i) {
      const float v = h[i];
      sink.load(&h[i], sizeof(float));
      if (mode == KernelMode::kDataDependent) {
        const bool skip = (v == 0.0f);
        sink.branch(hidden_skip_site, skip);
        if (skip) {
          sink.retire(detail::kLoopOverhead);
          continue;
        }
      }
      const float* row = &wh[i * hidden_dim];
      for (std::size_t j = 0; j < hidden_dim; ++j) {
        sink.load(&row[j], sizeof(float));
        acc[j] += v * row[j];
        sink.store(&acc[j], sizeof(float));
        sink.retire(detail::kMacInstructions + detail::kLoopOverhead);
      }
      sink.structural_branches(hidden_dim + 1);
    }
    sink.structural_branches(hidden_dim);
    // h = ReLU(acc)
    for (std::size_t j = 0; j < hidden_dim; ++j) {
      const float v = acc[j];
      sink.load(&acc[j], sizeof(float));
      if (mode == KernelMode::kDataDependent) {
        const bool negative = v < 0.0f;
        sink.branch(relu_site, negative);
        h[j] = negative ? 0.0f : v;
        sink.retire(detail::kLoopOverhead);
      } else {
        h[j] = v < 0.0f ? 0.0f : v;
        sink.retire(detail::kLoopOverhead + 1);
      }
      sink.store(&h[j], sizeof(float));
    }
    sink.structural_branches(hidden_dim + 1);
  }
}

}  // namespace

void rnn_instrumented(const RnnShape& s, uarch::TraceSink& sink,
                      KernelMode mode) {
  forward_kernel(s, sink, mode);
}

void rnn_scalar(const RnnShape& s, KernelMode mode) {
  uarch::DiscardSink sink;
  forward_kernel(s, sink, mode);
}

namespace {
const detail::KernelRegistration registration{
    {"elman-rnn", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "per-step scalar AXPY sweeps with row skips + ReLU branch, full trace"},
    {"elman-rnn", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "per-step scalar AXPY sweeps, every row streamed, branchless ReLU"},
};
}  // namespace

}  // namespace sce::nn::kernels
