// Fast softmax: the same three scalar passes with the trace machinery
// compiled out.  exp() dominates; the reductions keep their sequential
// order so every intermediate rounds identically.
#include <cmath>

#include "nn/kernels/registry.hpp"
#include "nn/kernels/softmax.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {

void softmax_fast(const float* x, float* y, std::size_t n) {
  float max_v = x[0];
  for (std::size_t i = 0; i < n; ++i)
    if (x[i] > max_v) max_v = x[i];
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = std::exp(x[i] - max_v);
    sum += y[i];
  }
  for (std::size_t i = 0; i < n; ++i) y[i] /= sum;
}

namespace {
const detail::KernelRegistration registration{
    {"softmax", KernelMode::kDataDependent, ExecutionPath::kFast,
     "stable exp-normalize, trace-free"},
    {"softmax", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "stable exp-normalize, trace-free"},
};
}  // namespace

}  // namespace sce::nn::kernels
