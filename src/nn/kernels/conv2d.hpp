// Conv2D kernel family: (algorithm × KernelMode × ExecutionPath).
//
// The instrumented implementations are the bodies that lived inline in
// nn/conv.cpp, moved here verbatim — their Sink-emitting loops are the
// leakage ground truth the trace oracle cross-validates, so their
// structure (loop order, per-event formulas, branch sites) must not
// drift.  The fast implementation lowers both algorithms onto one
// transposed-im2col + register-tiled GEMM whose per-output accumulation
// order is pinned to the instrumented loops (see conv2d_fast.cpp).
#pragma once

#include <cstddef>

#include "nn/kernels/execution_path.hpp"
#include "nn/workspace.hpp"
#include "uarch/trace.hpp"

namespace sce::nn {
enum class KernelMode;
enum class ConvAlgorithm;
}

namespace sce::nn::kernels {

/// Everything a convolution kernel needs, precomputed by the layer.
/// Weights are {out_channels, in_channels, kernel, kernel} flattened;
/// input is CHW; output is {out_channels, out_h, out_w}.
struct Conv2DShape {
  const float* in = nullptr;
  const float* weights = nullptr;
  const float* bias = nullptr;
  float* out = nullptr;
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 0;
  std::size_t padding = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t out_h = 0;
  std::size_t out_w = 0;
};

/// Instrumented direct loop nest, virtual-sink instantiation.
void conv2d_direct_instrumented(const Conv2DShape& s, uarch::TraceSink& sink,
                                KernelMode mode);
/// Same template instantiated over DiscardSink: trace calls compiled
/// away, scalar loop structure intact — the scalar baseline path.
void conv2d_direct_scalar(const Conv2DShape& s, KernelMode mode);

/// Instrumented im2col + GEMM (patch matrix in workspace scratch 0).
void conv2d_im2col_instrumented(const Conv2DShape& s, Workspace& workspace,
                                uarch::TraceSink& sink, KernelMode mode);
void conv2d_im2col_scalar(const Conv2DShape& s, Workspace& workspace,
                          KernelMode mode);

/// Fast path: transposed im2col + 8-pixel × 4-output-channel register
/// tiled GEMM, bit-identical to the instrumented kernel for the given
/// `algorithm` and `mode` (scratch 0: transposed patches; scratch 1:
/// validity mask, only touched for direct/constant-flow with padding).
void conv2d_fast(const Conv2DShape& s, Workspace& workspace,
                 ConvAlgorithm algorithm, KernelMode mode);

}  // namespace sce::nn::kernels
