// Instrumented Dense kernel — moved verbatim from nn/dense.cpp.
#include "nn/kernels/dense.hpp"

#include "nn/kernels/registry.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
// The instrumented loop bodies below were moved verbatim from the layer
// translation units, where unqualified `detail::` named sce::nn::detail.
// Re-export the cost-model constants here so the moved text still
// compiles unchanged inside kernels::detail's enclosing scope.
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

template <typename Sink>
void forward_kernel(const DenseShape& s, Sink& sink, KernelMode mode) {
  const std::size_t in = s.in_features;
  const std::size_t out = s.out_features;
  const float* x = s.in;
  const float* w = s.weights;
  float* y = s.out;

  const std::uintptr_t row_skip_site = SCE_BRANCH_SITE();

  // Accumulators initialized with the bias vector.
  for (std::size_t o = 0; o < out; ++o) {
    y[o] = s.bias[o];
    sink.load(&s.bias[o], sizeof(float));
    sink.store(&y[o], sizeof(float));
  }
  sink.structural_branches(out);

  for (std::size_t i = 0; i < in; ++i) {
    const float v = x[i];
    sink.load(&x[i], sizeof(float));
    if (mode == KernelMode::kDataDependent) {
      // Sparse-GEMM row skip: a zero activation's whole weight row is
      // never touched and its inner loop never runs.
      const bool skip = (v == 0.0f);
      sink.branch(row_skip_site, skip);
      if (skip) {
        sink.retire(detail::kLoopOverhead);
        continue;
      }
    }
    const float* row = &w[i * out];
    for (std::size_t o = 0; o < out; ++o) {
      sink.load(&row[o], sizeof(float));
      y[o] += v * row[o];
      sink.store(&y[o], sizeof(float));
      sink.retire(detail::kMacInstructions + detail::kLoopOverhead);
    }
    sink.structural_branches(out + 1);
  }
  sink.structural_branches(in);
}

}  // namespace

void dense_instrumented(const DenseShape& s, uarch::TraceSink& sink,
                        KernelMode mode) {
  forward_kernel(s, sink, mode);
}

void dense_scalar(const DenseShape& s, KernelMode mode) {
  uarch::DiscardSink sink;
  forward_kernel(s, sink, mode);
}

namespace {
const detail::KernelRegistration registration{
    {"dense", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "input-stationary scalar GEMV with sparse row skip, full trace"},
    {"dense", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "input-stationary scalar GEMV, every row streamed"},
};
}  // namespace

}  // namespace sce::nn::kernels
