// Instrumented softmax kernel — moved verbatim from nn/shape_ops.cpp.
#include <cmath>

#include "nn/kernels/registry.hpp"
#include "nn/kernels/softmax.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
// The instrumented loop bodies below were moved verbatim from the layer
// translation units, where unqualified `detail::` named sce::nn::detail.
// Re-export the cost-model constants here so the moved text still
// compiles unchanged inside kernels::detail's enclosing scope.
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

template <typename Sink>
void forward_kernel(const float* x, float* y, std::size_t n, Sink& sink) {
  float max_v = x[0];
  for (std::size_t i = 0; i < n; ++i) {
    sink.load(&x[i], sizeof(float));
    if (x[i] > max_v) max_v = x[i];
    sink.retire(detail::kCompareInstructions + 1);
  }
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = std::exp(x[i] - max_v);
    sum += y[i];
    sink.store(&y[i], sizeof(float));
    // exp() costs ~20 instructions in a vectorized libm.
    sink.retire(20);
  }
  for (std::size_t i = 0; i < n; ++i) {
    y[i] /= sum;
    sink.store(&y[i], sizeof(float));
    sink.retire(detail::kLoopOverhead + 1);
  }
  sink.structural_branches(3 * n);
}

}  // namespace

void softmax_instrumented(const float* in, float* out, std::size_t n,
                          uarch::TraceSink& sink) {
  forward_kernel(in, out, n, sink);
}

void softmax_scalar(const float* in, float* out, std::size_t n) {
  uarch::DiscardSink sink;
  forward_kernel(in, out, n, sink);
}

namespace {
const detail::KernelRegistration registration{
    {"softmax", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "stable exp-normalize; data-independent, modes identical"},
    {"softmax", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "stable exp-normalize; data-independent, modes identical"},
};
}  // namespace

}  // namespace sce::nn::kernels
