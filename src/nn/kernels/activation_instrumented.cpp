// Instrumented ReLU kernel — moved verbatim from nn/activation.cpp.
#include "nn/kernels/activation.hpp"

#include "nn/kernels/registry.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {
namespace detail {
// The instrumented loop bodies below were moved verbatim from the layer
// translation units, where unqualified `detail::` named sce::nn::detail.
// Re-export the cost-model constants here so the moved text still
// compiles unchanged inside kernels::detail's enclosing scope.
using nn::detail::kCompareInstructions;
using nn::detail::kLoopOverhead;
using nn::detail::kMacInstructions;
}  // namespace detail

namespace {

template <typename Sink>
void forward_kernel(const float* in_data, float* out_data, std::size_t n,
                    Sink& sink, KernelMode mode) {
  const std::uintptr_t negative_site = SCE_BRANCH_SITE();

  for (std::size_t i = 0; i < n; ++i) {
    const float v = in_data[i];
    sink.load(&in_data[i], sizeof(float));
    if (mode == KernelMode::kDataDependent) {
      // `if (v < 0) out = 0; else out = v;` compiled as a branch: whether
      // it is taken depends on the sign of the activation.
      const bool negative = v < 0.0f;
      sink.branch(negative_site, negative);
      out_data[i] = negative ? 0.0f : v;
      sink.retire(detail::kLoopOverhead);
    } else {
      // Branchless maxss(v, 0).
      out_data[i] = v < 0.0f ? 0.0f : v;
      sink.retire(detail::kLoopOverhead + 1);
    }
    sink.store(&out_data[i], sizeof(float));
  }
  sink.structural_branches(n);
}

}  // namespace

void relu_instrumented(const float* in, float* out, std::size_t n,
                       uarch::TraceSink& sink, KernelMode mode) {
  forward_kernel(in, out, n, sink, mode);
}

void relu_scalar(const float* in, float* out, std::size_t n,
                 KernelMode mode) {
  uarch::DiscardSink sink;
  forward_kernel(in, out, n, sink, mode);
}

namespace {
const detail::KernelRegistration registration{
    {"relu", KernelMode::kDataDependent, ExecutionPath::kInstrumented,
     "scalar loop, per-element sign branch traced"},
    {"relu", KernelMode::kConstantFlow, ExecutionPath::kInstrumented,
     "scalar loop, branchless max with fixed cost"},
};
}  // namespace

}  // namespace sce::nn::kernels
