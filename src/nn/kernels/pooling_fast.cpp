// Fast pooling: the scalar recurrences with no trace machinery.  The
// window gather is strided (no contiguous lanes to load) and pooling is
// noise next to conv/dense, so there is nothing to vectorize profitably;
// the win over the instrumented path is simply a tight loop the compiler
// can schedule freely.  Element order is preserved exactly (wy-major,
// wx), so max ties (-0.0 vs +0.0, NaN propagation) and the average's
// accumulation order match the instrumented kernels bit for bit.
#include "nn/kernels/pooling.hpp"
#include "nn/kernels/registry.hpp"
#include "nn/layer.hpp"

namespace sce::nn::kernels {

void maxpool2d_fast(const Pool2DShape& s) {
  for (std::size_t c = 0; c < s.channels; ++c) {
    for (std::size_t oy = 0; oy < s.out_h; ++oy) {
      for (std::size_t ox = 0; ox < s.out_w; ++ox) {
        const std::size_t base =
            (c * s.in_h + oy * s.window) * s.in_w + ox * s.window;
        float best = s.in[base];
        for (std::size_t wy = 0; wy < s.window; ++wy) {
          const float* row = &s.in[base + wy * s.in_w];
          for (std::size_t wx = wy == 0 ? 1 : 0; wx < s.window; ++wx) {
            const float v = row[wx];
            best = v > best ? v : best;
          }
        }
        s.out[(c * s.out_h + oy) * s.out_w + ox] = best;
      }
    }
  }
}

void avgpool2d_fast(const Pool2DShape& s) {
  const float inv_area = 1.0f / static_cast<float>(s.window * s.window);
  for (std::size_t c = 0; c < s.channels; ++c) {
    for (std::size_t oy = 0; oy < s.out_h; ++oy) {
      for (std::size_t ox = 0; ox < s.out_w; ++ox) {
        const std::size_t base =
            (c * s.in_h + oy * s.window) * s.in_w + ox * s.window;
        float sum = 0.0f;
        for (std::size_t wy = 0; wy < s.window; ++wy) {
          const float* row = &s.in[base + wy * s.in_w];
          for (std::size_t wx = 0; wx < s.window; ++wx) sum += row[wx];
        }
        s.out[(c * s.out_h + oy) * s.out_w + ox] = sum * inv_area;
      }
    }
  }
}

namespace {
const detail::KernelRegistration registration{
    {"maxpool2d", KernelMode::kDataDependent, ExecutionPath::kFast,
     "scalar windowed max, branchless cmov, trace-free"},
    {"maxpool2d", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "scalar windowed max, branchless cmov, trace-free"},
    {"avgpool2d", KernelMode::kDataDependent, ExecutionPath::kFast,
     "scalar windowed sum, trace-free"},
    {"avgpool2d", KernelMode::kConstantFlow, ExecutionPath::kFast,
     "scalar windowed sum, trace-free"},
};
}  // namespace

}  // namespace sce::nn::kernels
