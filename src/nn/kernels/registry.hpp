// Kernel registry: the introspection table over every kernel
// implementation in src/nn/kernels/, keyed by (op, KernelMode,
// ExecutionPath).
//
// Each kernel translation unit registers its implementations at static
// initialization (the TUs are pulled into the link by the layers' direct
// calls, so registration cannot be dead-stripped).  Layers dispatch to
// the kernel functions statically — the table adds no indirection to the
// hot path; it exists so tests can assert coverage (every op has both
// paths in both modes), so `leakage_lint --list-kernels` and DESIGN.md
// stay truthful, and so a missing registration is a test failure rather
// than a silent gap.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "nn/kernels/execution_path.hpp"

namespace sce::nn {
enum class KernelMode;
}

namespace sce::nn::kernels {

struct KernelEntry {
  /// Operation key, e.g. "conv2d.direct", "conv2d.im2col", "dense".
  const char* op;
  KernelMode mode;
  ExecutionPath path;
  /// One-line implementation description (shown by --list-kernels).
  const char* impl;
};

/// The implementation registered for (op, mode, path), or nullptr.
const KernelEntry* find_kernel(const std::string& op, KernelMode mode,
                               ExecutionPath path);

/// Every registered kernel, sorted by (op, mode, path) — deterministic
/// regardless of static-initialization order.
std::vector<KernelEntry> all_kernels();

/// Distinct op keys, sorted.
std::vector<std::string> all_ops();

namespace detail {
/// Self-registration helper: a namespace-scope instance per kernel TU.
struct KernelRegistration {
  explicit KernelRegistration(std::initializer_list<KernelEntry> entries);
};
}  // namespace detail

}  // namespace sce::nn::kernels
