#include "nn/rnn.hpp"

#include <cmath>

#include "nn/kernels/rnn.hpp"
#include "nn/kernels/symbolic.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"

namespace sce::nn {

ElmanRNN::ElmanRNN(std::size_t input_dim, std::size_t hidden_dim)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_({input_dim, hidden_dim}),
      wh_({hidden_dim, hidden_dim}),
      bias_(hidden_dim, 0.0f),
      grad_wx_({input_dim, hidden_dim}),
      grad_wh_({hidden_dim, hidden_dim}),
      grad_bias_(hidden_dim, 0.0f),
      momentum_wx_({input_dim, hidden_dim}),
      momentum_wh_({hidden_dim, hidden_dim}),
      momentum_bias_(hidden_dim, 0.0f) {
  if (input_dim == 0 || hidden_dim == 0)
    throw InvalidArgument("ElmanRNN: dimensions must be positive");
}

std::pair<std::size_t, std::size_t> ElmanRNN::sequence_dims(
    const std::vector<std::size_t>& shape) const {
  std::size_t t = 0;
  std::size_t d = 0;
  if (shape.size() == 2) {
    t = shape[0];
    d = shape[1];
  } else if (shape.size() == 3 && shape[0] == 1) {
    t = shape[1];
    d = shape[2];
  } else {
    throw InvalidArgument("ElmanRNN: expected {T, D} or {1, T, D} input");
  }
  if (d != input_dim_)
    throw InvalidArgument("ElmanRNN: input feature dim " + std::to_string(d) +
                          " != " + std::to_string(input_dim_));
  if (t == 0) throw InvalidArgument("ElmanRNN: empty sequence");
  return {t, d};
}

std::vector<std::size_t> ElmanRNN::output_shape(
    const std::vector<std::size_t>& in) const {
  (void)sequence_dims(in);
  return {hidden_dim_};
}

std::size_t ElmanRNN::parameter_count() const {
  return wx_.numel() + wh_.numel() + bias_.size();
}

void ElmanRNN::initialize(util::Rng& rng) {
  const double x_std = std::sqrt(2.0 / static_cast<double>(input_dim_));
  for (std::size_t i = 0; i < wx_.numel(); ++i)
    wx_[i] = static_cast<float>(rng.normal(0.0, x_std));
  // Recurrent matrix scaled for stability (spectral norm well below 1).
  const double h_std = 0.5 / std::sqrt(static_cast<double>(hidden_dim_));
  for (std::size_t i = 0; i < wh_.numel(); ++i)
    wh_[i] = static_cast<float>(rng.normal(0.0, h_std));
  for (auto& b : bias_) b = 0.0f;
  momentum_wx_.fill(0.0f);
  momentum_wh_.fill(0.0f);
  for (auto& m : momentum_bias_) m = 0.0f;
}

void ElmanRNN::forward_into(const Tensor& input, Tensor& output,
                            Workspace& workspace, uarch::TraceSink& sink,
                            KernelMode mode, ExecutionPath path) const {
  const auto [t_steps, d] = sequence_dims(input.shape());
  (void)d;
  if (output.rank() != 1 || output.dim(0) != hidden_dim_)
    output.resize({hidden_dim_});
  // The hidden state lives in the caller's output tensor; workspace
  // scratch holds the pre-activation accumulator.  Scratch contents are
  // unspecified, so h_0 = 0 must be established explicitly.
  output.fill(0.0f);
  Tensor& acc = workspace.scratch(0, hidden_dim_);

  kernels::RnnShape shape;
  shape.in = input.data();
  shape.wx = wx_.data();
  shape.wh = wh_.data();
  shape.bias = bias_.data();
  shape.h = output.data();
  shape.acc = acc.data();
  shape.t_steps = t_steps;
  shape.input_dim = input_dim_;
  shape.hidden_dim = hidden_dim_;

  if (kernels::select_path(sink, path) == ExecutionPath::kFast)
    kernels::rnn_fast(shape, mode);
  else if (sink.discards())
    kernels::rnn_scalar(shape, mode);
  else
    kernels::rnn_instrumented(shape, sink, mode);
}

void ElmanRNN::visit_buffers(const BufferVisitor& visit) const {
  visit("input_weights", wx_.data(), wx_.numel() * sizeof(float));
  visit("recurrent_weights", wh_.data(), wh_.numel() * sizeof(float));
  visit("bias", bias_.data(), bias_.size() * sizeof(float));
}

LeakageContract ElmanRNN::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  c.shape_scales_trace = true;  // trace length ∝ timestep count, both modes
  if (mode == KernelMode::kDataDependent) {
    c.branch_outcomes_vary = true;
    c.branch_count_varies = true;
    c.address_stream_varies = true;
    c.instruction_count_varies = true;
  }
  return c;
}

LeakageContract ElmanRNN::fast_leakage_contract(KernelMode mode) const {
  // Row skips survive as scalar branches on the fast path, and the
  // per-timestep scaling is inherent to the recurrence.
  return leakage_contract(mode);
}

void ElmanRNN::symbolic_forward(kernels::SymbolicExecutor& exec,
                                const std::vector<std::size_t>& input_shape,
                                KernelMode mode, ExecutionPath path) const {
  const auto [t_steps, d] = sequence_dims(input_shape);
  (void)d;
  kernels::rnn_symbolic(kernels::RnnGeom{t_steps, input_dim_, hidden_dim_},
                        exec, mode, path);
}

Tensor ElmanRNN::train_forward(const Tensor& input) {
  const auto [t_steps, d] = sequence_dims(input.shape());
  cached_input_ = input.reshaped({t_steps, d});
  hiddens_.assign(1, Tensor({hidden_dim_}));  // h_0 = 0
  const float* x = cached_input_.data();
  for (std::size_t t = 0; t < t_steps; ++t) {
    const Tensor& prev = hiddens_.back();
    Tensor h({hidden_dim_});
    for (std::size_t j = 0; j < hidden_dim_; ++j) h[j] = bias_[j];
    const float* xt = &x[t * input_dim_];
    for (std::size_t i = 0; i < input_dim_; ++i) {
      const float v = xt[i];
      if (v == 0.0f) continue;
      const float* row = &wx_.data()[i * hidden_dim_];
      for (std::size_t j = 0; j < hidden_dim_; ++j) h[j] += v * row[j];
    }
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      const float v = prev[i];
      if (v == 0.0f) continue;
      const float* row = &wh_.data()[i * hidden_dim_];
      for (std::size_t j = 0; j < hidden_dim_; ++j) h[j] += v * row[j];
    }
    for (std::size_t j = 0; j < hidden_dim_; ++j)
      h[j] = h[j] < 0.0f ? 0.0f : h[j];
    hiddens_.push_back(std::move(h));
  }
  return hiddens_.back();
}

Tensor ElmanRNN::backward(const Tensor& grad_output) {
  if (hiddens_.size() < 2)
    throw InvalidArgument("ElmanRNN::backward before train_forward");
  if (grad_output.numel() != hidden_dim_)
    throw InvalidArgument("ElmanRNN::backward: gradient shape mismatch");
  const std::size_t t_steps = hiddens_.size() - 1;
  Tensor grad_input(cached_input_.shape());
  Tensor grad_h = grad_output;  // dL/dh_t

  for (std::size_t t = t_steps; t-- > 0;) {
    const Tensor& h_next = hiddens_[t + 1];  // h_{t+1} == output of step t
    const Tensor& h_prev = hiddens_[t];
    // Through the ReLU: zero where the pre-activation was clipped.
    Tensor grad_pre({hidden_dim_});
    for (std::size_t j = 0; j < hidden_dim_; ++j)
      grad_pre[j] = h_next[j] > 0.0f ? grad_h[j] : 0.0f;

    for (std::size_t j = 0; j < hidden_dim_; ++j)
      grad_bias_[j] += grad_pre[j];

    const float* xt = &cached_input_.data()[t * input_dim_];
    for (std::size_t i = 0; i < input_dim_; ++i) {
      float acc = 0.0f;
      float* grow = &grad_wx_.data()[i * hidden_dim_];
      const float* row = &wx_.data()[i * hidden_dim_];
      for (std::size_t j = 0; j < hidden_dim_; ++j) {
        grow[j] += xt[i] * grad_pre[j];
        acc += row[j] * grad_pre[j];
      }
      grad_input[t * input_dim_ + i] = acc;
    }
    Tensor grad_h_prev({hidden_dim_});
    for (std::size_t i = 0; i < hidden_dim_; ++i) {
      float acc = 0.0f;
      float* grow = &grad_wh_.data()[i * hidden_dim_];
      const float* row = &wh_.data()[i * hidden_dim_];
      for (std::size_t j = 0; j < hidden_dim_; ++j) {
        grow[j] += h_prev[i] * grad_pre[j];
        acc += row[j] * grad_pre[j];
      }
      grad_h_prev[i] = acc;
    }
    grad_h = std::move(grad_h_prev);
  }
  return grad_input;
}

void ElmanRNN::sgd_step(float learning_rate, float momentum) {
  auto update = [&](Tensor& w, Tensor& gw, Tensor& mw) {
    for (std::size_t i = 0; i < w.numel(); ++i) {
      mw[i] =
          momentum * mw[i] - learning_rate * detail::clip_gradient(gw[i]);
      w[i] += mw[i];
      gw[i] = 0.0f;
    }
  };
  update(wx_, grad_wx_, momentum_wx_);
  update(wh_, grad_wh_, momentum_wh_);
  for (std::size_t j = 0; j < hidden_dim_; ++j) {
    momentum_bias_[j] = momentum * momentum_bias_[j] -
                        learning_rate * detail::clip_gradient(grad_bias_[j]);
    bias_[j] += momentum_bias_[j];
    grad_bias_[j] = 0.0f;
  }
}

void ElmanRNN::save_parameters(std::ostream& out) const {
  detail::write_floats(out, wx_.values());
  detail::write_floats(out, wh_.values());
  detail::write_floats(out, bias_);
}

void ElmanRNN::load_parameters(std::istream& in) {
  detail::read_floats(in, wx_.values());
  detail::read_floats(in, wh_.values());
  detail::read_floats(in, bias_);
}

}  // namespace sce::nn
