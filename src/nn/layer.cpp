#include "nn/layer.hpp"

namespace sce::nn {

LeakageContract Layer::leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::undeclared();
}

Tensor Layer::forward(const Tensor& input, uarch::TraceSink& sink,
                      KernelMode mode) const {
  Workspace workspace;
  Tensor output;
  forward_into(input, output, workspace, sink, mode);
  return output;
}

std::string to_string(KernelMode mode) {
  switch (mode) {
    case KernelMode::kDataDependent:
      return "data-dependent";
    case KernelMode::kConstantFlow:
      return "constant-flow";
  }
  return "?";
}

}  // namespace sce::nn
