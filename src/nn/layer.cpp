#include "nn/layer.hpp"

namespace sce::nn {

std::string to_string(KernelMode mode) {
  switch (mode) {
    case KernelMode::kDataDependent:
      return "data-dependent";
    case KernelMode::kConstantFlow:
      return "constant-flow";
  }
  return "?";
}

}  // namespace sce::nn
