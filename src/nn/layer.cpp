#include "nn/layer.hpp"

#include "nn/kernels/symbolic.hpp"

namespace sce::nn {

LeakageContract Layer::leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::undeclared();
}

LeakageContract Layer::fast_leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::undeclared();
}

LeakageContract Layer::leakage_contract(KernelMode mode,
                                        ExecutionPath path) const {
  LeakageContract c = path == ExecutionPath::kFast
                          ? fast_leakage_contract(mode)
                          : leakage_contract(mode);
  c.path = path;
  return c;
}

void Layer::symbolic_forward(kernels::SymbolicExecutor& exec,
                             const std::vector<std::size_t>& /*input_shape*/,
                             KernelMode /*mode*/,
                             ExecutionPath /*path*/) const {
  exec.unmodeled("layer has no symbolic kernel model");
}

Tensor Layer::forward(const Tensor& input, uarch::TraceSink& sink,
                      KernelMode mode, ExecutionPath path) const {
  Workspace workspace;
  Tensor output;
  forward_into(input, output, workspace, sink, mode, path);
  return output;
}

Tensor Layer::forward(const Tensor& input, uarch::TraceSink& sink,
                      KernelMode mode) const {
  return forward(input, sink, mode,
                 sink.discards() ? ExecutionPath::kFast
                                 : ExecutionPath::kInstrumented);
}

Tensor Layer::forward(const Tensor& input) const {
  uarch::NullSink sink;
  return forward(input, sink, KernelMode::kDataDependent,
                 ExecutionPath::kFast);
}

std::string to_string(KernelMode mode) {
  switch (mode) {
    case KernelMode::kDataDependent:
      return "data-dependent";
    case KernelMode::kConstantFlow:
      return "constant-flow";
  }
  return "?";
}

}  // namespace sce::nn
