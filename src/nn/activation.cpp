#include "nn/activation.hpp"

#include "util/error.hpp"

namespace sce::nn {

void ReLU::forward_into(const Tensor& input, Tensor& output,
                        Workspace& /*workspace*/, uarch::TraceSink& sink,
                        KernelMode mode) const {
  if (!output.same_shape(input)) output.resize(input.shape());
  if (sink.discards()) {
    uarch::DiscardSink fast;
    forward_kernel(input, output, fast, mode);
  } else {
    forward_kernel(input, output, sink, mode);
  }
}

template <typename Sink>
void ReLU::forward_kernel(const Tensor& input, Tensor& output, Sink& sink,
                          KernelMode mode) const {
  const float* in_data = input.data();
  float* out_data = output.data();
  const std::uintptr_t negative_site = SCE_BRANCH_SITE();

  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float v = in_data[i];
    sink.load(&in_data[i], sizeof(float));
    if (mode == KernelMode::kDataDependent) {
      // `if (v < 0) out = 0; else out = v;` compiled as a branch: whether
      // it is taken depends on the sign of the activation.
      const bool negative = v < 0.0f;
      sink.branch(negative_site, negative);
      out_data[i] = negative ? 0.0f : v;
      sink.retire(detail::kLoopOverhead);
    } else {
      // Branchless maxss(v, 0).
      out_data[i] = v < 0.0f ? 0.0f : v;
      sink.retire(detail::kLoopOverhead + 1);
    }
    sink.store(&out_data[i], sizeof(float));
  }
  sink.structural_branches(input.numel());
}

LeakageContract ReLU::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  if (mode == KernelMode::kDataDependent) c.branch_outcomes_vary = true;
  return c;
}

Tensor ReLU::train_forward(const Tensor& input) {
  cached_input_ = input;
  Tensor output(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    output[i] = input[i] < 0.0f ? 0.0f : input[i];
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0)
    throw InvalidArgument("ReLU::backward before train_forward");
  if (!grad_output.same_shape(cached_input_))
    throw InvalidArgument("ReLU::backward: gradient shape mismatch");
  Tensor grad_input(cached_input_.shape());
  for (std::size_t i = 0; i < grad_input.numel(); ++i)
    grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  return grad_input;
}

}  // namespace sce::nn
