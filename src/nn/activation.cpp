#include "nn/activation.hpp"

#include "nn/kernels/activation.hpp"
#include "nn/kernels/symbolic.hpp"
#include "util/error.hpp"

namespace sce::nn {

void ReLU::forward_into(const Tensor& input, Tensor& output,
                        Workspace& /*workspace*/, uarch::TraceSink& sink,
                        KernelMode mode, ExecutionPath path) const {
  if (!output.same_shape(input)) output.resize(input.shape());
  const std::size_t n = input.numel();
  if (kernels::select_path(sink, path) == ExecutionPath::kFast)
    kernels::relu_fast(input.data(), output.data(), n);
  else if (sink.discards())
    kernels::relu_scalar(input.data(), output.data(), n, mode);
  else
    kernels::relu_instrumented(input.data(), output.data(), n, sink, mode);
}

LeakageContract ReLU::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  if (mode == KernelMode::kDataDependent) c.branch_outcomes_vary = true;
  return c;
}

LeakageContract ReLU::fast_leakage_contract(KernelMode /*mode*/) const {
  // Vector compare + blend: no branch in either mode.
  return LeakageContract{};
}

void ReLU::symbolic_forward(kernels::SymbolicExecutor& exec,
                            const std::vector<std::size_t>& input_shape,
                            KernelMode mode, ExecutionPath path) const {
  std::size_t n = 1;
  for (std::size_t d : input_shape) n *= d;
  kernels::relu_symbolic(n, exec, mode, path);
}

Tensor ReLU::train_forward(const Tensor& input) {
  cached_input_ = input;
  Tensor output(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    output[i] = input[i] < 0.0f ? 0.0f : input[i];
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0)
    throw InvalidArgument("ReLU::backward before train_forward");
  if (!grad_output.same_shape(cached_input_))
    throw InvalidArgument("ReLU::backward: gradient shape mismatch");
  Tensor grad_input(cached_input_.shape());
  for (std::size_t i = 0; i < grad_input.numel(); ++i)
    grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
  return grad_input;
}

}  // namespace sce::nn
