#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sce::nn {

double cross_entropy(const Tensor& probabilities, std::size_t label) {
  if (label >= probabilities.numel())
    throw InvalidArgument("cross_entropy: label out of range");
  const double p =
      std::max(1e-12, static_cast<double>(probabilities[label]));
  return -std::log(p);
}

Tensor softmax_cross_entropy_gradient(const Tensor& probabilities,
                                      std::size_t label) {
  if (label >= probabilities.numel())
    throw InvalidArgument("softmax_cross_entropy_gradient: label range");
  Tensor grad = probabilities;
  grad[label] -= 1.0f;
  return grad;
}

}  // namespace sce::nn
