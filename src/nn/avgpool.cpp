#include "nn/avgpool.hpp"

#include "util/error.hpp"

namespace sce::nn {

AvgPool2D::AvgPool2D(std::size_t window) : window_(window) {
  if (window == 0) throw InvalidArgument("AvgPool2D: window must be positive");
}

std::vector<std::size_t> AvgPool2D::output_shape(
    const std::vector<std::size_t>& in) const {
  if (in.size() != 3) throw InvalidArgument("AvgPool2D: expected CHW input");
  if (in[1] < window_ || in[2] < window_)
    throw InvalidArgument("AvgPool2D: input smaller than window");
  return {in[0], in[1] / window_, in[2] / window_};
}

void AvgPool2D::forward_into(const Tensor& input, Tensor& output,
                             Workspace& /*workspace*/, uarch::TraceSink& sink,
                             KernelMode /*mode*/) const {
  // No data-dependent shortcuts exist; both kernel modes are identical.
  if (input.rank() != 3 || input.dim(1) < window_ || input.dim(2) < window_)
    (void)output_shape(input.shape());  // throws with the full diagnosis
  const std::size_t out_h = input.dim(1) / window_;
  const std::size_t out_w = input.dim(2) / window_;
  if (output.rank() != 3 || output.dim(0) != input.dim(0) ||
      output.dim(1) != out_h || output.dim(2) != out_w)
    output.resize({input.dim(0), out_h, out_w});
  if (sink.discards()) {
    uarch::DiscardSink fast;
    forward_kernel(input, output, fast);
  } else {
    forward_kernel(input, output, sink);
  }
}

template <typename Sink>
void AvgPool2D::forward_kernel(const Tensor& input, Tensor& output,
                               Sink& sink) const {
  const std::size_t channels = output.dim(0);
  const std::size_t out_h = output.dim(1);
  const std::size_t out_w = output.dim(2);
  const std::size_t in_h = input.dim(1);
  const std::size_t in_w = input.dim(2);
  const float* in_data = input.data();
  float* out_data = output.data();
  const float inv_area =
      1.0f / static_cast<float>(window_ * window_);

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float sum = 0.0f;
        for (std::size_t wy = 0; wy < window_; ++wy) {
          for (std::size_t wx = 0; wx < window_; ++wx) {
            const std::size_t idx =
                (c * in_h + (oy * window_ + wy)) * in_w + (ox * window_ + wx);
            sum += in_data[idx];
            sink.load(&in_data[idx], sizeof(float));
            sink.retire(detail::kLoopOverhead + 1);
          }
        }
        const std::size_t out_idx = (c * out_h + oy) * out_w + ox;
        out_data[out_idx] = sum * inv_area;
        sink.store(&out_data[out_idx], sizeof(float));
        sink.retire(1);
        sink.structural_branches(window_ * window_ + window_ + 1);
      }
    }
  }
}

LeakageContract AvgPool2D::leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

Tensor AvgPool2D::train_forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  uarch::NullSink sink;
  return forward(input, sink, KernelMode::kConstantFlow);
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty())
    throw InvalidArgument("AvgPool2D::backward before train_forward");
  const auto out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape)
    throw InvalidArgument("AvgPool2D::backward: gradient shape mismatch");
  Tensor grad_input(cached_input_shape_);
  const std::size_t channels = out_shape[0];
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_h = cached_input_shape_[1];
  const std::size_t in_w = cached_input_shape_[2];
  const float inv_area = 1.0f / static_cast<float>(window_ * window_);

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const float g =
            grad_output[(c * out_h + oy) * out_w + ox] * inv_area;
        for (std::size_t wy = 0; wy < window_; ++wy)
          for (std::size_t wx = 0; wx < window_; ++wx)
            grad_input[(c * in_h + (oy * window_ + wy)) * in_w +
                       (ox * window_ + wx)] += g;
      }
    }
  }
  return grad_input;
}

}  // namespace sce::nn
