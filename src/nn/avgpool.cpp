#include "nn/avgpool.hpp"

#include "nn/kernels/pooling.hpp"
#include "nn/kernels/symbolic.hpp"
#include "util/error.hpp"

namespace sce::nn {

AvgPool2D::AvgPool2D(std::size_t window) : window_(window) {
  if (window == 0) throw InvalidArgument("AvgPool2D: window must be positive");
}

std::vector<std::size_t> AvgPool2D::output_shape(
    const std::vector<std::size_t>& in) const {
  if (in.size() != 3) throw InvalidArgument("AvgPool2D: expected CHW input");
  if (in[1] < window_ || in[2] < window_)
    throw InvalidArgument("AvgPool2D: input smaller than window");
  return {in[0], in[1] / window_, in[2] / window_};
}

void AvgPool2D::forward_into(const Tensor& input, Tensor& output,
                             Workspace& /*workspace*/, uarch::TraceSink& sink,
                             KernelMode /*mode*/, ExecutionPath path) const {
  // No data-dependent shortcuts exist; both kernel modes are identical.
  if (input.rank() != 3 || input.dim(1) < window_ || input.dim(2) < window_)
    (void)output_shape(input.shape());  // throws with the full diagnosis
  const std::size_t out_h = input.dim(1) / window_;
  const std::size_t out_w = input.dim(2) / window_;
  if (output.rank() != 3 || output.dim(0) != input.dim(0) ||
      output.dim(1) != out_h || output.dim(2) != out_w)
    output.resize({input.dim(0), out_h, out_w});

  kernels::Pool2DShape shape;
  shape.in = input.data();
  shape.out = output.data();
  shape.channels = input.dim(0);
  shape.in_h = input.dim(1);
  shape.in_w = input.dim(2);
  shape.out_h = out_h;
  shape.out_w = out_w;
  shape.window = window_;

  if (kernels::select_path(sink, path) == ExecutionPath::kFast)
    kernels::avgpool2d_fast(shape);
  else if (sink.discards())
    kernels::avgpool2d_scalar(shape);
  else
    kernels::avgpool2d_instrumented(shape, sink);
}

LeakageContract AvgPool2D::leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

LeakageContract AvgPool2D::fast_leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

void AvgPool2D::symbolic_forward(kernels::SymbolicExecutor& exec,
                                 const std::vector<std::size_t>& input_shape,
                                 KernelMode /*mode*/,
                                 ExecutionPath path) const {
  const std::vector<std::size_t> out = output_shape(input_shape);
  kernels::Pool2DGeom g;
  g.channels = input_shape[0];
  g.in_h = input_shape[1];
  g.in_w = input_shape[2];
  g.out_h = out[1];
  g.out_w = out[2];
  g.window = window_;
  kernels::avgpool2d_symbolic(g, exec, path);
}

Tensor AvgPool2D::train_forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return forward(input);
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty())
    throw InvalidArgument("AvgPool2D::backward before train_forward");
  const auto out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape)
    throw InvalidArgument("AvgPool2D::backward: gradient shape mismatch");
  Tensor grad_input(cached_input_shape_);
  const std::size_t channels = out_shape[0];
  const std::size_t out_h = out_shape[1];
  const std::size_t out_w = out_shape[2];
  const std::size_t in_h = cached_input_shape_[1];
  const std::size_t in_w = cached_input_shape_[2];
  const float inv_area = 1.0f / static_cast<float>(window_ * window_);

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        const float g =
            grad_output[(c * out_h + oy) * out_w + ox] * inv_area;
        for (std::size_t wy = 0; wy < window_; ++wy)
          for (std::size_t wx = 0; wx < window_; ++wx)
            grad_input[(c * in_h + (oy * window_ + wy)) * in_w +
                       (ox * window_ + wx)] += g;
      }
    }
  }
  return grad_input;
}

}  // namespace sce::nn
