// Dense row-major float tensor, the value type flowing between layers.
//
// Shapes follow the CHW convention for images: {channels, height, width}.
// The class is intentionally small — just enough structure for a CNN
// inference/training engine with shape checking — because the interesting
// behaviour of this repository lives in how the kernels *touch* this
// memory, not in tensor algebra.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace sce::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> values);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& values() { return data_; }
  const std::vector<float>& values() const { return data_; }

  float& operator[](std::size_t flat_index);
  float operator[](std::size_t flat_index) const;

  /// 3-D element access (CHW); bounds-checked.
  float& at(std::size_t c, std::size_t y, std::size_t x);
  float at(std::size_t c, std::size_t y, std::size_t x) const;

  /// Reinterpret as a new shape with the same element count.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Reshape in place to `shape`, keeping the underlying buffers.  Newly
  /// exposed elements are zero; surviving elements keep their values.
  /// Capacity never shrinks, so repeated resizes inside a preallocated
  /// workspace are allocation-free once the high-water mark is reached.
  void resize(const std::vector<std::size_t>& shape);

  /// Preallocate storage for up to `max_numel` elements and `max_rank`
  /// dimensions without changing the current shape or contents.
  void reserve(std::size_t max_numel, std::size_t max_rank);

  void fill(float value);

  /// Index of the maximum element (first on ties). Requires numel() > 0.
  std::size_t argmax() const;

  /// Fraction of elements that are exactly zero — the activation sparsity
  /// that drives the data-dependent kernels.
  double sparsity() const;

  std::string shape_string() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace sce::nn
