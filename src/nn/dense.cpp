#include "nn/dense.hpp"

#include <cmath>

#include "nn/kernels/dense.hpp"
#include "nn/kernels/symbolic.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"

namespace sce::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weights_({in_features, out_features}),
      bias_(out_features, 0.0f),
      grad_weights_({in_features, out_features}),
      grad_bias_(out_features, 0.0f),
      momentum_weights_({in_features, out_features}),
      momentum_bias_(out_features, 0.0f) {
  if (in_features == 0 || out_features == 0)
    throw InvalidArgument("Dense: dimensions must be positive");
}

std::vector<std::size_t> Dense::output_shape(
    const std::vector<std::size_t>& in) const {
  std::size_t numel = 1;
  for (std::size_t d : in) numel *= d;
  if (in.empty() || numel != in_)
    throw InvalidArgument("Dense: input has wrong element count");
  return {out_};
}

std::size_t Dense::parameter_count() const {
  return weights_.numel() + bias_.size();
}

void Dense::initialize(util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_));
  for (std::size_t i = 0; i < weights_.numel(); ++i)
    weights_[i] = static_cast<float>(rng.normal(0.0, stddev));
  for (auto& b : bias_) b = 0.0f;
  momentum_weights_.fill(0.0f);
  for (auto& m : momentum_bias_) m = 0.0f;
}

void Dense::forward_into(const Tensor& input, Tensor& output,
                         Workspace& /*workspace*/, uarch::TraceSink& sink,
                         KernelMode mode, ExecutionPath path) const {
  if (input.numel() != in_)
    throw InvalidArgument("Dense::forward: input has wrong element count");
  if (output.rank() != 1 || output.dim(0) != out_) output.resize({out_});

  kernels::DenseShape shape;
  shape.in = input.data();
  shape.weights = weights_.data();
  shape.bias = bias_.data();
  shape.out = output.data();
  shape.in_features = in_;
  shape.out_features = out_;

  if (kernels::select_path(sink, path) == ExecutionPath::kFast)
    kernels::dense_fast(shape, mode);
  else if (sink.discards())
    kernels::dense_scalar(shape, mode);
  else
    kernels::dense_instrumented(shape, sink, mode);
}

void Dense::visit_buffers(const BufferVisitor& visit) const {
  visit("weights", weights_.data(), weights_.numel() * sizeof(float));
  visit("bias", bias_.data(), bias_.size() * sizeof(float));
}

LeakageContract Dense::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  if (mode == KernelMode::kDataDependent) {
    c.branch_outcomes_vary = true;
    c.branch_count_varies = true;
    c.address_stream_varies = true;
    c.instruction_count_varies = true;
  }
  return c;
}

LeakageContract Dense::fast_leakage_contract(KernelMode mode) const {
  // The row skip survives as a scalar branch on the fast path (it elides
  // whole weight-row loads), so data-dependent mode leaks there too.
  return leakage_contract(mode);
}

void Dense::symbolic_forward(kernels::SymbolicExecutor& exec,
                             const std::vector<std::size_t>& /*input_shape*/,
                             KernelMode mode, ExecutionPath path) const {
  kernels::dense_symbolic(kernels::DenseGeom{in_, out_}, exec, mode, path);
}

Tensor Dense::train_forward(const Tensor& input) {
  if (input.numel() != in_)
    throw InvalidArgument("Dense::train_forward: wrong element count");
  cached_input_ = input.reshaped({in_});
  Tensor output({out_});
  const float* x = cached_input_.data();
  const float* w = weights_.data();
  float* y = output.data();
  for (std::size_t o = 0; o < out_; ++o) y[o] = bias_[o];
  for (std::size_t i = 0; i < in_; ++i) {
    const float v = x[i];
    if (v == 0.0f) continue;
    const float* row = &w[i * out_];
    for (std::size_t o = 0; o < out_; ++o) y[o] += v * row[o];
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0)
    throw InvalidArgument("Dense::backward before train_forward");
  if (grad_output.numel() != out_)
    throw InvalidArgument("Dense::backward: gradient shape mismatch");
  Tensor grad_input({in_});
  const float* x = cached_input_.data();
  const float* go = grad_output.data();
  const float* w = weights_.data();
  float* gi = grad_input.data();
  float* gw = grad_weights_.data();
  for (std::size_t o = 0; o < out_; ++o) grad_bias_[o] += go[o];
  for (std::size_t i = 0; i < in_; ++i) {
    const float* row = &w[i * out_];
    float* grow = &gw[i * out_];
    float acc = 0.0f;
    const float v = x[i];
    for (std::size_t o = 0; o < out_; ++o) {
      grow[o] += v * go[o];
      acc += row[o] * go[o];
    }
    gi[i] = acc;
  }
  return grad_input;
}

void Dense::sgd_step(float learning_rate, float momentum) {
  float* w = weights_.data();
  float* gw = grad_weights_.data();
  float* mw = momentum_weights_.data();
  for (std::size_t i = 0; i < weights_.numel(); ++i) {
    mw[i] = momentum * mw[i] - learning_rate * detail::clip_gradient(gw[i]);
    w[i] += mw[i];
    gw[i] = 0.0f;
  }
  for (std::size_t o = 0; o < out_; ++o) {
    momentum_bias_[o] = momentum * momentum_bias_[o] -
                        learning_rate * detail::clip_gradient(grad_bias_[o]);
    bias_[o] += momentum_bias_[o];
    grad_bias_[o] = 0.0f;
  }
}

void Dense::save_parameters(std::ostream& out) const {
  detail::write_floats(out, weights_.values());
  detail::write_floats(out, bias_);
}

void Dense::load_parameters(std::istream& in) {
  detail::read_floats(in, weights_.values());
  detail::read_floats(in, bias_);
}

}  // namespace sce::nn
