#include "nn/dense.hpp"

#include <cmath>

#include "nn/serialize.hpp"
#include "util/error.hpp"

namespace sce::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weights_({in_features, out_features}),
      bias_(out_features, 0.0f),
      grad_weights_({in_features, out_features}),
      grad_bias_(out_features, 0.0f),
      momentum_weights_({in_features, out_features}),
      momentum_bias_(out_features, 0.0f) {
  if (in_features == 0 || out_features == 0)
    throw InvalidArgument("Dense: dimensions must be positive");
}

std::vector<std::size_t> Dense::output_shape(
    const std::vector<std::size_t>& in) const {
  std::size_t numel = 1;
  for (std::size_t d : in) numel *= d;
  if (in.empty() || numel != in_)
    throw InvalidArgument("Dense: input has wrong element count");
  return {out_};
}

std::size_t Dense::parameter_count() const {
  return weights_.numel() + bias_.size();
}

void Dense::initialize(util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_));
  for (std::size_t i = 0; i < weights_.numel(); ++i)
    weights_[i] = static_cast<float>(rng.normal(0.0, stddev));
  for (auto& b : bias_) b = 0.0f;
  momentum_weights_.fill(0.0f);
  for (auto& m : momentum_bias_) m = 0.0f;
}

void Dense::forward_into(const Tensor& input, Tensor& output,
                         Workspace& /*workspace*/, uarch::TraceSink& sink,
                         KernelMode mode) const {
  if (input.numel() != in_)
    throw InvalidArgument("Dense::forward: input has wrong element count");
  if (output.rank() != 1 || output.dim(0) != out_) output.resize({out_});
  if (sink.discards()) {
    uarch::DiscardSink fast;
    forward_kernel(input, output, fast, mode);
  } else {
    forward_kernel(input, output, sink, mode);
  }
}

template <typename Sink>
void Dense::forward_kernel(const Tensor& input, Tensor& output, Sink& sink,
                           KernelMode mode) const {
  const float* x = input.data();
  const float* w = weights_.data();
  float* y = output.data();

  const std::uintptr_t row_skip_site = SCE_BRANCH_SITE();

  // Accumulators initialized with the bias vector.
  for (std::size_t o = 0; o < out_; ++o) {
    y[o] = bias_[o];
    sink.load(&bias_[o], sizeof(float));
    sink.store(&y[o], sizeof(float));
  }
  sink.structural_branches(out_);

  for (std::size_t i = 0; i < in_; ++i) {
    const float v = x[i];
    sink.load(&x[i], sizeof(float));
    if (mode == KernelMode::kDataDependent) {
      // Sparse-GEMM row skip: a zero activation's whole weight row is
      // never touched and its inner loop never runs.
      const bool skip = (v == 0.0f);
      sink.branch(row_skip_site, skip);
      if (skip) {
        sink.retire(detail::kLoopOverhead);
        continue;
      }
    }
    const float* row = &w[i * out_];
    for (std::size_t o = 0; o < out_; ++o) {
      sink.load(&row[o], sizeof(float));
      y[o] += v * row[o];
      sink.store(&y[o], sizeof(float));
      sink.retire(detail::kMacInstructions + detail::kLoopOverhead);
    }
    sink.structural_branches(out_ + 1);
  }
  sink.structural_branches(in_);
}

void Dense::visit_buffers(const BufferVisitor& visit) const {
  visit("weights", weights_.data(), weights_.numel() * sizeof(float));
  visit("bias", bias_.data(), bias_.size() * sizeof(float));
}

LeakageContract Dense::leakage_contract(KernelMode mode) const {
  LeakageContract c;
  if (mode == KernelMode::kDataDependent) {
    c.branch_outcomes_vary = true;
    c.branch_count_varies = true;
    c.address_stream_varies = true;
    c.instruction_count_varies = true;
  }
  return c;
}

Tensor Dense::train_forward(const Tensor& input) {
  if (input.numel() != in_)
    throw InvalidArgument("Dense::train_forward: wrong element count");
  cached_input_ = input.reshaped({in_});
  Tensor output({out_});
  const float* x = cached_input_.data();
  const float* w = weights_.data();
  float* y = output.data();
  for (std::size_t o = 0; o < out_; ++o) y[o] = bias_[o];
  for (std::size_t i = 0; i < in_; ++i) {
    const float v = x[i];
    if (v == 0.0f) continue;
    const float* row = &w[i * out_];
    for (std::size_t o = 0; o < out_; ++o) y[o] += v * row[o];
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0)
    throw InvalidArgument("Dense::backward before train_forward");
  if (grad_output.numel() != out_)
    throw InvalidArgument("Dense::backward: gradient shape mismatch");
  Tensor grad_input({in_});
  const float* x = cached_input_.data();
  const float* go = grad_output.data();
  const float* w = weights_.data();
  float* gi = grad_input.data();
  float* gw = grad_weights_.data();
  for (std::size_t o = 0; o < out_; ++o) grad_bias_[o] += go[o];
  for (std::size_t i = 0; i < in_; ++i) {
    const float* row = &w[i * out_];
    float* grow = &gw[i * out_];
    float acc = 0.0f;
    const float v = x[i];
    for (std::size_t o = 0; o < out_; ++o) {
      grow[o] += v * go[o];
      acc += row[o] * go[o];
    }
    gi[i] = acc;
  }
  return grad_input;
}

void Dense::sgd_step(float learning_rate, float momentum) {
  float* w = weights_.data();
  float* gw = grad_weights_.data();
  float* mw = momentum_weights_.data();
  for (std::size_t i = 0; i < weights_.numel(); ++i) {
    mw[i] = momentum * mw[i] - learning_rate * detail::clip_gradient(gw[i]);
    w[i] += mw[i];
    gw[i] = 0.0f;
  }
  for (std::size_t o = 0; o < out_; ++o) {
    momentum_bias_[o] = momentum * momentum_bias_[o] -
                        learning_rate * detail::clip_gradient(grad_bias_[o]);
    bias_[o] += momentum_bias_[o];
    grad_bias_[o] = 0.0f;
  }
}

void Dense::save_parameters(std::ostream& out) const {
  detail::write_floats(out, weights_.values());
  detail::write_floats(out, bias_);
}

void Dense::load_parameters(std::istream& in) {
  detail::read_floats(in, weights_.values());
  detail::read_floats(in, bias_);
}

}  // namespace sce::nn
