// Categorical cross-entropy on probability outputs.
#pragma once

#include <cstddef>

#include "nn/tensor.hpp"

namespace sce::nn {

/// -log p[label], with clamping for numerical safety.
double cross_entropy(const Tensor& probabilities, std::size_t label);

/// Gradient of cross-entropy *fused through softmax*: given the softmax
/// output p and the true label, dL/d(logits) = p - onehot(label).  The
/// trainer uses this to skip the explicit softmax Jacobian.
Tensor softmax_cross_entropy_gradient(const Tensor& probabilities,
                                      std::size_t label);

}  // namespace sce::nn
