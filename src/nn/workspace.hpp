// Caller-owned scratch storage for allocation-free layer kernels.
//
// A Workspace lends numbered scratch tensors to a layer's forward_into:
// Conv2D's im2col patch matrix, ElmanRNN's hidden/accumulator state, and
// whatever future kernels need.  Slots keep their storage between calls,
// so after a first (sizing) pass every borrow is allocation-free — the
// property the measurement campaign relies on to keep allocator traffic
// out of the HPC distributions it t-tests.
//
// A Workspace is owned by whoever owns the inference loop: InferencePlan
// keeps one per layer, while the allocating Layer::forward wrapper makes
// a throwaway one per call.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "nn/tensor.hpp"

namespace sce::nn {

class Workspace {
 public:
  /// Borrow scratch tensor `slot` shaped {d0}.  Contents are unspecified
  /// (kernels must write before reading).  References stay valid until
  /// the workspace is destroyed — growth never moves existing slots.
  Tensor& scratch(std::size_t slot, std::size_t d0);
  /// Borrow scratch tensor `slot` shaped {d0, d1}.
  Tensor& scratch(std::size_t slot, std::size_t d0, std::size_t d1);

  std::size_t slot_count() const { return slots_.size(); }

  /// Read-only view of slot `i` (for buffer registration/inspection);
  /// throws InvalidArgument when out of range.
  const Tensor& slot(std::size_t i) const;

 private:
  Tensor& slot_ref(std::size_t slot);

  std::deque<Tensor> slots_;  // deque: stable references across growth
};

}  // namespace sce::nn
