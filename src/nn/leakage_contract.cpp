#include "nn/leakage_contract.hpp"

namespace sce::nn {

std::string to_string(TaintTransfer transfer) {
  return transfer == TaintTransfer::kPropagate ? "propagate" : "sanitize";
}

LeakageContract LeakageContract::constant() { return LeakageContract{}; }

LeakageContract LeakageContract::undeclared() {
  LeakageContract c;
  c.branch_outcomes_vary = true;
  c.branch_count_varies = true;
  c.address_stream_varies = true;
  c.instruction_count_varies = true;
  c.declared = false;
  return c;
}

bool operator==(const LeakageContract& a, const LeakageContract& b) {
  return a.branch_outcomes_vary == b.branch_outcomes_vary &&
         a.branch_count_varies == b.branch_count_varies &&
         a.address_stream_varies == b.address_stream_varies &&
         a.instruction_count_varies == b.instruction_count_varies &&
         a.consumes_rng == b.consumes_rng &&
         a.shape_scales_trace == b.shape_scales_trace &&
         a.taint == b.taint && a.declared == b.declared && a.path == b.path;
}

bool operator!=(const LeakageContract& a, const LeakageContract& b) {
  return !(a == b);
}

std::string to_string(const LeakageContract& contract) {
  if (!contract.declared) return "undeclared (assumed worst-case)";
  std::string out;
  if (contract.branch_outcomes_vary || contract.branch_count_varies) {
    out += "branches(";
    out += contract.branch_outcomes_vary ? "outcomes" : "";
    if (contract.branch_count_varies)
      out += (contract.branch_outcomes_vary ? ",count" : "count");
    out += ")";
  }
  if (contract.address_stream_varies)
    out += (out.empty() ? "" : " ") + std::string("addresses");
  if (contract.instruction_count_varies)
    out += (out.empty() ? "" : " ") + std::string("instructions");
  if (contract.consumes_rng)
    out += (out.empty() ? "" : " ") + std::string("rng");
  if (contract.shape_scales_trace)
    out += (out.empty() ? "" : " ") + std::string("shape-scaled");
  if (out.empty()) out = "constant-flow";
  if (contract.taint == TaintTransfer::kSanitize) out += " [sanitizes]";
  if (!contract.oracle_verifiable())
    out += contract.symbolically_verified
               ? " [fast path: symbolically verified]"
               : " [fast path: oracle-unverified]";
  return out;
}

}  // namespace sce::nn
