// Per-example SGD trainer with the softmax/cross-entropy fusion.
#pragma once

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace sce::nn {

struct TrainConfig {
  std::size_t epochs = 4;
  float learning_rate = 0.005f;
  float momentum = 0.85f;
  /// Multiply the learning rate by this factor after each epoch.
  float lr_decay = 0.7f;
  std::uint64_t shuffle_seed = 42;
  bool verbose = false;
};

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
};

/// Trains `model` (whose last layer must be Softmax) on `dataset` with
/// plain SGD + momentum; returns per-epoch loss/accuracy on the training
/// data itself.
std::vector<EpochStats> train(Sequential& model, const data::Dataset& dataset,
                              const TrainConfig& config);

/// Top-1 accuracy of `model` on `dataset` (un-instrumented inference).
double evaluate_accuracy(const Sequential& model,
                         const data::Dataset& dataset);

}  // namespace sce::nn
