#include "nn/dropout.hpp"

#include <algorithm>

#include "nn/kernels/symbolic.hpp"
#include "util/error.hpp"

namespace sce::nn {

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (!(rate >= 0.0f) || !(rate < 1.0f))
    throw InvalidArgument("Dropout: rate must be in [0, 1)");
}

void Dropout::forward_into(const Tensor& input, Tensor& output,
                           Workspace& /*workspace*/,
                           uarch::TraceSink& /*sink*/, KernelMode /*mode*/,
                           ExecutionPath /*path*/) const {
  // Dropout is compiled out of the deployed network: inference is the
  // identity and emits no trace events, on every path.
  if (!output.same_shape(input)) output.resize(input.shape());
  std::copy(input.data(), input.data() + input.numel(), output.data());
}

LeakageContract Dropout::leakage_contract(KernelMode /*mode*/) const {
  // Identity at inference: no trace, and the RNG is only consumed by
  // train_forward — a deployed Dropout is side-channel-silent.
  return LeakageContract::constant();
}

LeakageContract Dropout::fast_leakage_contract(KernelMode /*mode*/) const {
  return LeakageContract::constant();
}

void Dropout::symbolic_forward(kernels::SymbolicExecutor& exec,
                               const std::vector<std::size_t>& input_shape,
                               KernelMode /*mode*/,
                               ExecutionPath /*path*/) const {
  // No rng_draw here: the mask is drawn in train_forward only, and this
  // model is what proves the deployed layer keeps that promise.
  std::size_t n = 1;
  for (std::size_t d : input_shape) n *= d;
  const kernels::SymBuffer in = exec.input_buffer();
  const kernels::SymBuffer out = exec.output_buffer(n);
  for (std::size_t i = 0; i < n; ++i) exec.assign(out, i, exec.value(in, i));
}

Tensor Dropout::train_forward(const Tensor& input) {
  mask_.assign(input.numel(), true);
  Tensor output(input.shape());
  const float scale = 1.0f / (1.0f - rate_);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    if (rng_.chance(rate_)) {
      mask_[i] = false;
      output[i] = 0.0f;
    } else {
      output[i] = input[i] * scale;
    }
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.size() != grad_output.numel())
    throw InvalidArgument("Dropout::backward before train_forward");
  Tensor grad_input(grad_output.shape());
  const float scale = 1.0f / (1.0f - rate_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    grad_input[i] = mask_[i] ? grad_output[i] * scale : 0.0f;
  return grad_input;
}

}  // namespace sce::nn
