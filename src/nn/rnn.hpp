// Elman recurrent layer — the paper's future-work direction ("explore the
// vulnerabilities in other deep learning models").
//
//   h_t = ReLU(Wx x_t + Wh h_{t-1} + b),   h_0 = 0
//
// consuming a {T, input_dim} sequence (a leading singleton channel axis is
// accepted) and emitting the final hidden state {hidden_dim}.
//
// Side-channel-wise RNNs add a leak CNNs do not have: the *number of
// timesteps* scales every counter linearly, so variable-length inputs
// broadcast their length; and the recurrent ReLU sparsity gates the
// data-dependent row-skipping of both weight matrices each step.
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

class ElmanRNN final : public Layer {
 public:
  ElmanRNN(std::size_t input_dim, std::size_t hidden_dim);

  std::string name() const override { return "elman-rnn"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void sgd_step(float learning_rate, float momentum) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;
  std::size_t parameter_count() const override;
  void save_parameters(std::ostream& out) const override;
  void load_parameters(std::istream& in) override;
  void initialize(util::Rng& rng) override;

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Data-dependent: zero-skipping on both weight matrices (input rows
  /// and ReLU-sparse hidden rows) plus the recurrent sign branch — every
  /// trace aspect varies.  In both modes the trace additionally scales
  /// with the timestep count, so variable-length deployments broadcast
  /// their sequence length even under the countermeasure.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;

  /// The fast kernel keeps the row-skip branches in data-dependent mode
  /// (and the timestep scaling in both), so its claims match the
  /// instrumented ones.
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

  void visit_buffers(const BufferVisitor& visit) const override;

  Tensor& input_weights() { return wx_; }
  Tensor& recurrent_weights() { return wh_; }

 private:
  /// Normalize {T, D} / {1, T, D} to (T, D); throws on mismatch.
  std::pair<std::size_t, std::size_t> sequence_dims(
      const std::vector<std::size_t>& shape) const;

  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Tensor wx_;                // {input_dim, hidden}
  Tensor wh_;                // {hidden, hidden}
  std::vector<float> bias_;  // {hidden}

  // Training state (BPTT caches).
  Tensor cached_input_;          // {T, D}
  std::vector<Tensor> hiddens_;  // h_0 .. h_T, each {hidden}
  Tensor grad_wx_;
  Tensor grad_wh_;
  std::vector<float> grad_bias_;
  Tensor momentum_wx_;
  Tensor momentum_wh_;
  std::vector<float> momentum_bias_;
};

}  // namespace sce::nn
