// Inverted dropout: a training-time regularizer.
//
// Inference is the identity (and emits no trace — dropout disappears from
// the deployed network, so it plays no role in the side-channel story);
// training masks activations with probability `rate` and scales the
// survivors by 1/(1-rate) so the expected activation is unchanged.
#pragma once

#include "nn/layer.hpp"

namespace sce::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(float rate, std::uint64_t seed = 1234);

  std::string name() const override { return "dropout"; }
  using Layer::forward_into;
  void forward_into(const Tensor& input, Tensor& output,
                    Workspace& workspace, uarch::TraceSink& sink,
                    KernelMode mode, ExecutionPath path) const override;
  Tensor train_forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }

  float rate() const { return rate_; }

  /// Inference is the identity and emits no trace: constant-flow in both
  /// modes, and — crucially — no RNG draw (the mask is a training-only
  /// construct), so the RNG contract must not fire on deployed models.
  using Layer::leakage_contract;
  LeakageContract leakage_contract(KernelMode mode) const override;
  LeakageContract fast_leakage_contract(KernelMode mode) const override;

  /// Identity at inference: a traceless copy that draws no randomness.
  void symbolic_forward(kernels::SymbolicExecutor& exec,
                        const std::vector<std::size_t>& input_shape,
                        KernelMode mode, ExecutionPath path) const override;

 private:
  float rate_;
  util::Rng rng_;
  std::vector<bool> mask_;
};

}  // namespace sce::nn
