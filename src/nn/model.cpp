#include "nn/model.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace sce::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw InvalidArgument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  cached_plan_.reset();  // architecture changed; shapes may differ
  return *this;
}

Layer& Sequential::layer(std::size_t i) {
  if (i >= layers_.size())
    throw InvalidArgument("Sequential::layer: index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  return const_cast<Sequential*>(this)->layer(i);
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->parameter_count();
  return n;
}

std::vector<std::size_t> Sequential::output_shape(
    std::vector<std::size_t> shape) const {
  for (const auto& l : layers_) shape = l->output_shape(shape);
  return shape;
}

Tensor Sequential::forward(const Tensor& input, uarch::TraceSink& sink,
                           KernelMode mode) const {
  if (layers_.empty()) throw InvalidArgument("Sequential: no layers");
  Tensor x = layers_.front()->forward(input, sink, mode);
  for (std::size_t i = 1; i < layers_.size(); ++i)
    x = layers_[i]->forward(x, sink, mode);
  return x;
}

InferencePlan Sequential::plan(
    const std::vector<std::size_t>& input_shape) const {
  return InferencePlan(*this, input_shape);
}

InferencePlan& Sequential::ensure_plan(
    const std::vector<std::size_t>& input_shape) const {
  if (!cached_plan_ || cached_plan_->input_shape() != input_shape)
    cached_plan_ = std::make_unique<InferencePlan>(*this, input_shape);
  return *cached_plan_;
}

Tensor Sequential::predict(const Tensor& input) const {
  return ensure_plan(input.shape()).run(input);
}

std::size_t Sequential::classify(const data::Image& image) const {
  image_to_tensor_into(image, staged_input_);
  return ensure_plan(staged_input_.shape()).run(staged_input_).argmax();
}

Tensor Sequential::train_forward(const Tensor& input) {
  if (layers_.empty()) throw InvalidArgument("Sequential: no layers");
  Tensor x = layers_.front()->train_forward(input);
  for (std::size_t i = 1; i < layers_.size(); ++i)
    x = layers_[i]->train_forward(x);
  return x;
}

void Sequential::backward(const Tensor& grad_output, std::size_t skip_last) {
  if (skip_last >= layers_.size())
    throw InvalidArgument("Sequential::backward: skip_last too large");
  Tensor g = grad_output;
  for (std::size_t i = layers_.size() - skip_last; i-- > 0;)
    g = layers_[i]->backward(g);
}

void Sequential::sgd_step(float learning_rate, float momentum) {
  for (auto& l : layers_) l->sgd_step(learning_rate, momentum);
}

void Sequential::initialize(util::Rng& rng) {
  for (auto& l : layers_) l->initialize(rng);
}

std::string Sequential::summary(
    const std::vector<std::size_t>& input_shape) const {
  std::ostringstream os;
  std::vector<std::size_t> shape = input_shape;
  os << "input " << Tensor(shape).shape_string() << '\n';
  for (const auto& l : layers_) {
    shape = l->output_shape(shape);
    os << "  " << l->name() << " -> " << Tensor(shape).shape_string();
    if (l->parameter_count() > 0)
      os << "  (" << l->parameter_count() << " params)";
    os << '\n';
  }
  os << "total parameters: " << parameter_count() << '\n';
  return os.str();
}

Tensor image_to_tensor(const data::Image& image) {
  return Tensor({image.channels(), image.height(), image.width()},
                image.pixels());
}

void image_to_tensor_into(const data::Image& image, Tensor& out) {
  if (out.rank() != 3 || out.dim(0) != image.channels() ||
      out.dim(1) != image.height() || out.dim(2) != image.width())
    out.resize({image.channels(), image.height(), image.width()});
  const auto& pixels = image.pixels();
  std::copy(pixels.begin(), pixels.end(), out.data());
}

}  // namespace sce::nn
